#include <gtest/gtest.h>

#include "core/ucs.h"
#include "core/unifiability_graph.h"
#include "ir/parser.h"

namespace eq::core {
namespace {

using ir::QueryContext;
using ir::QuerySet;

class UcsTest : public ::testing::Test {
 protected:
  UcsChecker::Report Check(const std::string& program) {
    ir::Parser parser(&ctx_);
    auto r = parser.ParseProgram(program);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    qs_ = std::move(r).value();
    graph_ = std::make_unique<UnifiabilityGraph>(&qs_);
    EXPECT_TRUE(graph_->Build().ok());
    return UcsChecker::Check(*graph_);
  }

  QueryContext ctx_;
  QuerySet qs_;
  std::unique_ptr<UnifiabilityGraph> graph_;
};

TEST_F(UcsTest, IntroductionPairIsUcs) {
  auto report = Check(
      "{R(Jerry, x)} R(Kramer, x) :- F(x, Paris);"
      "{R(Kramer, y)} R(Jerry, y) :- F(y, Paris)");
  EXPECT_TRUE(report.ucs);
  EXPECT_TRUE(report.cross_edges.empty());
  // Both queries share one SCC.
  EXPECT_EQ(report.scc_of[0], report.scc_of[1]);
}

// Figure 3 (b): Jerry and Kramer coordinate mutually; Frank additionally
// wants Jerry, but nothing requires Frank. The Jerry→Frank edge leaves
// Jerry's SCC — a proper subset (Jerry, Kramer) may coordinate "locally".
TEST_F(UcsTest, Figure3bIsNotUcs) {
  auto report = Check(
      "{R(Jerry, x)} R(Kramer, x) :- F(x, Paris);"
      "{R(Kramer, y)} R(Jerry, y) :- F(y, Paris);"
      "{R(Jerry, z)} R(Frank, z) :- F(z, Paris), A(z, United)");
  EXPECT_FALSE(report.ucs);
  ASSERT_FALSE(report.cross_edges.empty());
  // Jerry and Kramer in one SCC; Frank in his own.
  EXPECT_EQ(report.scc_of[0], report.scc_of[1]);
  EXPECT_NE(report.scc_of[0], report.scc_of[2]);
  // The offending edge points from the pair's SCC into Frank's.
  for (uint32_t id : report.cross_edges) {
    const Edge& e = graph_->edge(id);
    EXPECT_EQ(e.to, 2u);
  }
}

// Figure 3 (a) satisfies UCS even though it is unsafe: all three queries
// lie in one SCC ("an interesting property", §3.1.2).
TEST_F(UcsTest, Figure3aIsUcsDespiteBeingUnsafe) {
  auto report = Check(
      "{R(Jerry, x)} R(Kramer, x) :- F(x, Paris);"
      "{R(Jerry, y)} R(Elaine, y) :- F(y, Athens);"
      "{R(f, z)} R(Jerry, z) :- F(z, w), Friend(Jerry, f)");
  EXPECT_TRUE(report.ucs);
  EXPECT_EQ(report.scc_of[0], report.scc_of[1]);
  EXPECT_EQ(report.scc_of[1], report.scc_of[2]);
}

TEST_F(UcsTest, IsolatedQueriesAreUcs) {
  auto report = Check(
      "{} R(Jerry, x) :- F(x, Paris);"
      "{} S(Kramer, y) :- F(y, Rome)");
  EXPECT_TRUE(report.ucs);
  EXPECT_NE(report.scc_of[0], report.scc_of[1]);
  EXPECT_EQ(report.scc_count, 2u);
}

TEST_F(UcsTest, SelfLoopIsUcs) {
  auto report = Check("{R(Kramer, x)} R(Kramer, x) :- F(x, Paris)");
  EXPECT_TRUE(report.ucs);
  EXPECT_EQ(report.scc_count, 1u);
}

TEST_F(UcsTest, ChainIsNotUcs) {
  // q0 → q1 → q2 without back edges: every edge crosses SCCs.
  auto report = Check(
      "{} K(1) :- B(a);"
      "{K(1)} K(2) :- B(b);"
      "{K(2)} K(3) :- B(c)");
  EXPECT_FALSE(report.ucs);
  EXPECT_EQ(report.cross_edges.size(), 2u);
  EXPECT_EQ(report.scc_count, 3u);
}

TEST_F(UcsTest, ThreeCycleIsUcs) {
  auto report = Check(
      "{K(3)} K(1) :- B(a);"
      "{K(1)} K(2) :- B(b);"
      "{K(2)} K(3) :- B(c)");
  EXPECT_TRUE(report.ucs);
  EXPECT_EQ(report.scc_count, 1u);
}

TEST_F(UcsTest, DeadNodesAreIgnored) {
  ir::Parser parser(&ctx_);
  auto r = parser.ParseProgram(
      "{R(Jerry, x)} R(Kramer, x) :- F(x, Paris);"
      "{R(Kramer, y)} R(Jerry, y) :- F(y, Paris);"
      "{R(Jerry, z)} R(Frank, z) :- F(z, Paris)");
  ASSERT_TRUE(r.ok());
  qs_ = std::move(r).value();
  graph_ = std::make_unique<UnifiabilityGraph>(&qs_);
  ASSERT_TRUE(graph_->Build().ok());
  // With Frank present: not UCS. After removing Frank: UCS again.
  EXPECT_FALSE(UcsChecker::Check(*graph_).ucs);
  graph_->RemoveNode(2);
  auto report = UcsChecker::Check(*graph_);
  EXPECT_TRUE(report.ucs);
  EXPECT_EQ(report.scc_of[2], -1);
}

}  // namespace
}  // namespace eq::core
