#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "client/session.h"
#include "db/database.h"
#include "service/export.h"
#include "service/service.h"
#include "service/trace.h"

namespace eq::service {
namespace {

using engine::EvalMode;

void FlightBootstrap(ir::QueryContext* ctx, db::Database* db) {
  ASSERT_TRUE(db->CreateTable("F", {{"fno", ir::ValueType::kInt},
                                    {"dest", ir::ValueType::kString}})
                  .ok());
  ASSERT_TRUE(db->CreateTable("A", {{"fno", ir::ValueType::kInt},
                                    {"airline", ir::ValueType::kString}})
                  .ok());
  auto S = [&](const char* s) { return ir::Value::Str(ctx->Intern(s)); };
  ASSERT_TRUE(db->Insert("F", {ir::Value::Int(122), S("Paris")}).ok());
  ASSERT_TRUE(db->Insert("F", {ir::Value::Int(123), S("Paris")}).ok());
  ASSERT_TRUE(db->Insert("A", {ir::Value::Int(122), S("United")}).ok());
  ASSERT_TRUE(db->Insert("A", {ir::Value::Int(123), S("United")}).ok());
}

ServiceOptions Opts(uint32_t shards, EvalMode mode = EvalMode::kSetAtATime) {
  ServiceOptions o;
  o.num_shards = shards;
  o.mode = mode;
  o.max_batch = 16;
  o.max_delay_ticks = 1;
  o.bootstrap = FlightBootstrap;
  o.trace_all = true;  // observability tests inspect every query's trace
  return o;
}

void WaitForPending(CoordinationService& svc, uint64_t n) {
  for (int i = 0; i < 5000 && svc.Metrics().pending < n; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(svc.Metrics().pending, n);
}

/// Index of the first event of `kind`, or -1.
int IndexOf(const QueryTrace& t, TraceEventKind kind) {
  for (size_t i = 0; i < t.events.size(); ++i) {
    if (t.events[i].kind == kind) return static_cast<int>(i);
  }
  return -1;
}

void ExpectMonotoneTimestamps(const QueryTrace& t) {
  for (size_t i = 1; i < t.events.size(); ++i) {
    EXPECT_LE(t.events[i - 1].at, t.events[i].at)
        << "event " << i << " (" << TraceEventKindName(t.events[i].kind)
        << ") precedes event " << i - 1 << " ("
        << TraceEventKindName(t.events[i - 1].kind) << ") in time";
  }
}

// ------------------------------------------------------ percentile math --

TEST(HistogramPercentileTest, InterpolatesWithinBucketBounds) {
  std::array<uint64_t, LatencyHistogram::kBuckets> buckets{};
  // 100 samples in bucket 11: [1024, 2048) microseconds.
  buckets[11] = 100;
  double p50 = HistogramPercentileMs(buckets, 50);
  // Log-linear: lower * 2^frac = 1.024ms * 2^0.5 ≈ 1.448ms. The
  // pre-interpolation code returned the upper bound (2.048) — an
  // overstatement of up to 2x.
  EXPECT_NEAR(p50, 1.024 * std::sqrt(2.0), 0.01);
  EXPECT_GT(p50, 1.024);
  EXPECT_LT(p50, 2.048);
  // The highest rank meets the bucket's upper bound exactly.
  EXPECT_NEAR(HistogramPercentileMs(buckets, 100), 2.048, 1e-9);
  // Low ranks approach the lower bound from above.
  EXPECT_LT(HistogramPercentileMs(buckets, 1), HistogramPercentileMs(buckets, 99));
  EXPECT_GT(HistogramPercentileMs(buckets, 1), 1.024);
}

TEST(HistogramPercentileTest, BucketZeroInterpolatesLinearly) {
  std::array<uint64_t, LatencyHistogram::kBuckets> buckets{};
  buckets[0] = 10;  // [0, 1) microsecond
  double p50 = HistogramPercentileMs(buckets, 50);
  EXPECT_GT(p50, 0.0);
  EXPECT_LT(p50, 0.001);
}

TEST(HistogramPercentileTest, EmptyHistogramIsZero) {
  std::array<uint64_t, LatencyHistogram::kBuckets> buckets{};
  EXPECT_EQ(HistogramPercentileMs(buckets, 99), 0.0);
}

TEST(HistogramPercentileTest, PercentilesAreMonotoneAcrossBuckets) {
  std::array<uint64_t, LatencyHistogram::kBuckets> buckets{};
  buckets[5] = 50;
  buckets[10] = 30;
  buckets[15] = 20;
  double prev = 0;
  for (double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    double v = HistogramPercentileMs(buckets, pct);
    EXPECT_GE(v, prev) << "p" << pct;
    prev = v;
  }
}

// -------------------------------------------------------------- bounds --

TEST(TraceRingTest, OverflowKeepsNewestOldestFirst) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.ticket = i;
    ring.Append(ev);
  }
  EXPECT_EQ(ring.total_appended(), 10u);
  std::vector<TraceEvent> got = ring.Snapshot();
  ASSERT_EQ(got.size(), 4u);  // hard capacity bound
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(got[i].ticket, 6 + i);  // 6,7,8,9 — oldest retained first
  }
}

TEST(TraceRegistryTest, SamplingAdmitsEveryNth) {
  TraceRegistry::Options opts;
  opts.sample_every = 3;
  TraceRegistry reg(opts);
  int admitted = 0;
  for (TicketId t = 1; t <= 9; ++t) {
    if (reg.Admit(t)) ++admitted;
  }
  EXPECT_EQ(admitted, 3);  // submissions 0, 3, 6 of the counter
  EXPECT_EQ(reg.admitted(), 3u);
}

TEST(TraceRegistryTest, SampleEveryZeroDisablesTracing) {
  TraceRegistry::Options opts;
  opts.sample_every = 0;
  TraceRegistry reg(opts);
  EXPECT_FALSE(reg.Admit(1));
  EXPECT_EQ(reg.size(), 0u);
}

TEST(TraceRegistryTest, CapacityBoundEvictsOldestAdmitted) {
  TraceRegistry::Options opts;
  opts.trace_all = true;
  opts.max_traces = 4;
  TraceRegistry reg(opts);
  for (TicketId t = 1; t <= 10; ++t) ASSERT_TRUE(reg.Admit(t));
  EXPECT_EQ(reg.size(), 4u);
  EXPECT_EQ(reg.evicted(), 6u);
  EXPECT_FALSE(reg.Trace(1).ok());  // oldest, evicted
  EXPECT_TRUE(reg.Trace(10).ok());  // newest, retained
}

TEST(TraceRegistryTest, PerTraceEventBoundCountsOverflow) {
  TraceRegistry::Options opts;
  opts.trace_all = true;
  opts.max_events_per_trace = 2;
  TraceRegistry reg(opts);
  ASSERT_TRUE(reg.Admit(7));
  for (int i = 0; i < 5; ++i) {
    TraceEvent ev;
    ev.ticket = 7;
    reg.Record(ev);
  }
  auto t = reg.Trace(7);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->events.size(), 2u);
  EXPECT_EQ(t->dropped_events, 3u);
  EXPECT_NE(t->ToString().find("dropped"), std::string::npos);
}

TEST(TraceRegistryTest, RecordForUnadmittedTicketIsNoOp) {
  TraceRegistry::Options opts;
  opts.trace_all = true;
  TraceRegistry reg(opts);
  TraceEvent ev;
  ev.ticket = 99;
  reg.Record(ev);  // never admitted
  EXPECT_FALSE(reg.Trace(99).ok());
  EXPECT_EQ(reg.Trace(99).status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------- e2e tracing --

TEST(QueryTraceTest, FlushResolutionTracesOrderedLifecycle) {
  CoordinationService svc(Opts(1));
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Paris)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Paris)");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(svc.Drain());

  for (const Ticket* t : {&*a, &*b}) {
    auto trace = svc.Trace(*t);
    ASSERT_TRUE(trace.ok()) << trace.status().ToString();
    EXPECT_TRUE(trace->resolved);
    ExpectMonotoneTimestamps(*trace);

    int submitted = IndexOf(*trace, TraceEventKind::kSubmitted);
    int routed = IndexOf(*trace, TraceEventKind::kRouted);
    int enqueued = IndexOf(*trace, TraceEventKind::kEnqueued);
    int engine_submit = IndexOf(*trace, TraceEventKind::kEngineSubmit);
    int flush = IndexOf(*trace, TraceEventKind::kFlushEval);
    int resolved = IndexOf(*trace, TraceEventKind::kResolved);
    ASSERT_GE(submitted, 0);
    ASSERT_GT(routed, submitted);
    ASSERT_GT(enqueued, routed);
    ASSERT_GT(engine_submit, enqueued);
    ASSERT_GT(flush, engine_submit);
    ASSERT_GT(resolved, flush);

    const TraceEvent& res = trace->events[resolved];
    EXPECT_EQ(res.detail,
              static_cast<uint64_t>(engine::QueryOutcome::Via::kFlush));
    EXPECT_EQ(res.status, StatusCode::kOk);

    EXPECT_GT(trace->spans.total_us, 0.0);
    EXPECT_GE(trace->spans.eval_count, 1u);
    // The rendering carries the resolution wave and per-event kinds.
    std::string s = trace->ToString();
    EXPECT_NE(s.find("via=flush"), std::string::npos) << s;
    EXPECT_NE(s.find("FlushEval"), std::string::npos) << s;
  }

  // Shard-side events also landed in the per-shard ring.
  EXPECT_GT(svc.ShardTraceRing(0).total_appended(), 0u);
}

TEST(QueryTraceTest, WakeupResolutionTracesWakeupEval) {
  CoordinationService svc(Opts(1));
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Lisbon)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Lisbon)");
  ASSERT_TRUE(a.ok() && b.ok());
  WaitForPending(svc, 2);

  ASSERT_TRUE(svc.ApplyWrite("F", {ir::Value::Int(900),
                                   ir::Value::Str(
                                       svc.interner().Intern("Lisbon"))})
                  .ok());
  ASSERT_TRUE(a->WaitFor(std::chrono::milliseconds(10000)));
  ASSERT_TRUE(b->WaitFor(std::chrono::milliseconds(10000)));

  auto trace = svc.Trace(*a);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ExpectMonotoneTimestamps(*trace);
  int wakeup = IndexOf(*trace, TraceEventKind::kWakeupEval);
  int adopt = IndexOf(*trace, TraceEventKind::kSnapshotAdopt);
  int resolved = IndexOf(*trace, TraceEventKind::kResolved);
  ASSERT_GE(wakeup, 0) << trace->ToString();
  ASSERT_GE(adopt, 0) << trace->ToString();
  ASSERT_GT(resolved, wakeup);
  EXPECT_GT(trace->events[adopt].detail, 1u);  // adopted the write's version
  EXPECT_EQ(trace->events[resolved].detail,
            static_cast<uint64_t>(engine::QueryOutcome::Via::kWakeup));
}

TEST(QueryTraceTest, MigrationTraceSpansBothShards) {
  CoordinationService svc(Opts(2));
  auto t1 = svc.SubmitAsync("{Ra(Bob, x)} Ra(Alice, x) :- F(x, Paris)");
  auto t2 = svc.SubmitAsync("{Rb(Carol, y)} Rb(Dan, y) :- F(y, Paris)");
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_NE(svc.router().ShardOfRelation("Ra"),
            svc.router().ShardOfRelation("Rb"));
  auto t3 = svc.SubmitAsync(
      "{Ra(Alice, z), Rb(Dan, z)} Ra(Bob, z), Rb(Carol, z) :- F(z, Paris)");
  ASSERT_TRUE(t3.ok());
  ASSERT_TRUE(svc.Drain());
  ASSERT_GE(svc.Metrics().migrations, 1u);

  // One of the first two queries was stranded and migrated; its trace
  // carries the whole journey: out of the losing shard, into the winner,
  // a second engine submission, and the final resolution.
  bool found_migrated = false;
  for (const Ticket* t : {&*t1, &*t2}) {
    auto trace = svc.Trace(*t);
    ASSERT_TRUE(trace.ok()) << trace.status().ToString();
    int out = IndexOf(*trace, TraceEventKind::kMigratedOut);
    if (out < 0) continue;
    found_migrated = true;
    ExpectMonotoneTimestamps(*trace);
    int in = IndexOf(*trace, TraceEventKind::kMigratedIn);
    int resolved = IndexOf(*trace, TraceEventKind::kResolved);
    ASSERT_GT(in, out) << trace->ToString();
    ASSERT_GT(resolved, in) << trace->ToString();
    const TraceEvent& ev_out = trace->events[out];
    const TraceEvent& ev_in = trace->events[in];
    EXPECT_NE(ev_out.shard, ev_in.shard);  // two shards, one trace
    // A fresh engine submission follows the migration in.
    bool resubmitted = false;
    for (int i = in + 1; i < resolved; ++i) {
      if (trace->events[i].kind == TraceEventKind::kEngineSubmit) {
        resubmitted = true;
      }
    }
    EXPECT_TRUE(resubmitted) << trace->ToString();
  }
  EXPECT_TRUE(found_migrated);
}

TEST(QueryTraceTest, UnsampledTicketIsNotFound) {
  ServiceOptions o = Opts(1);
  o.trace_all = false;
  o.trace_sample_every = 0;  // tracing disabled
  CoordinationService svc(std::move(o));
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Paris)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Paris)");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(svc.Drain());
  auto trace = svc.Trace(*a);
  EXPECT_FALSE(trace.ok());
  EXPECT_EQ(trace.status().code(), StatusCode::kNotFound);
}

// ----------------------------------------------------------- dump state --

TEST(DumpStateTest, ShowsStrandedPendingQueryWithGroupAndLag) {
  // Strand a pair deliberately: wake-ups off, so the write below bumps the
  // storage head but nothing adopts it — exactly the situation DumpState
  // exists to diagnose (pending queries + snapshot lag).
  ServiceOptions o = Opts(1);
  o.write_wakeups = false;
  CoordinationService svc(std::move(o));
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Vienna)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Vienna)");
  ASSERT_TRUE(a.ok() && b.ok());
  WaitForPending(svc, 2);
  ASSERT_TRUE(svc.ApplyWrite("F", {ir::Value::Int(800),
                                   ir::Value::Str(
                                       svc.interner().Intern("Vienna"))})
                  .ok());

  ServiceStateDump dump = svc.DumpState();
  EXPECT_EQ(dump.storage_version, svc.storage().version());
  ASSERT_EQ(dump.shards.size(), 1u);
  const ServiceStateDump::ShardState& shard = dump.shards[0];
  // The write published a version nobody adopted: visible as lag.
  EXPECT_GE(shard.snapshot_lag, 1u);
  EXPECT_EQ(shard.snapshot_version + shard.snapshot_lag, dump.storage_version);
  ASSERT_EQ(shard.pending.size(), 2u);
  for (const ServiceStateDump::PendingQuery& p : shard.pending) {
    EXPECT_EQ(p.fingerprint, "R");  // the entangled group
    EXPECT_TRUE(p.traced);
    EXPECT_EQ(p.partition_size, 2u);  // the pair shares one partition
    EXPECT_NE(std::find(p.body_relations.begin(), p.body_relations.end(),
                        "F"),
              p.body_relations.end());
    EXPECT_GE(p.pending_ms, 0.0);
  }
  EXPECT_LT(shard.pending[0].ticket, shard.pending[1].ticket);

  std::string s = dump.ToString();
  EXPECT_NE(s.find("group=R"), std::string::npos) << s;
  EXPECT_NE(s.find("lag="), std::string::npos) << s;

  // Resolve the strand so shutdown is clean.
  ASSERT_TRUE(svc.Drain());
  ServiceStateDump after = svc.DumpState();
  EXPECT_TRUE(after.shards[0].pending.empty());
}

// ------------------------------------------------------------ exporters --

TEST(ExportTest, PrometheusTextHasCumulativeHistogram) {
  CoordinationService svc(Opts(2));
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Paris)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Paris)");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(svc.Drain());

  ServiceMetrics m = svc.Metrics();
  std::string text = MetricsToPrometheusText(m);
  EXPECT_NE(text.find("# TYPE eq_submitted_total counter"), std::string::npos);
  EXPECT_NE(text.find("eq_submitted_total 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE eq_latency_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("eq_latency_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("eq_latency_ms_count 2"), std::string::npos);
  EXPECT_NE(text.find("eq_shard_submitted_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("eq_shard_submitted_total{shard=\"1\"}"),
            std::string::npos);

  // `le` buckets must be cumulative: counts never decrease down the text.
  uint64_t prev = 0;
  size_t pos = 0;
  int buckets_seen = 0;
  while ((pos = text.find("eq_latency_ms_bucket{", pos)) !=
         std::string::npos) {
    size_t brace = text.find("} ", pos);
    ASSERT_NE(brace, std::string::npos);
    uint64_t count = std::stoull(text.substr(brace + 2));
    EXPECT_GE(count, prev);
    prev = count;
    ++buckets_seen;
    pos = brace;
  }
  EXPECT_EQ(buckets_seen,
            static_cast<int>(LatencyHistogram::kBuckets) + 1);  // + +Inf
  EXPECT_EQ(prev, 2u);  // the cumulative total is the sample count
}

TEST(ExportTest, JsonCarriesCountersPercentilesAndShards) {
  CoordinationService svc(Opts(2));
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Paris)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Paris)");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(svc.Drain());

  std::string json = MetricsToJson(svc.Metrics());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');  // trailing newline after the brace
  EXPECT_NE(json.find("\"submitted\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"answered\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"latency_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  EXPECT_NE(json.find("\"drain_ops_per_sec\""), std::string::npos);
  // Braces and brackets balance — cheap structural sanity.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ExportTest, EnrichedShardLinesKeepServiceLineStable) {
  CoordinationService svc(Opts(1));
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Paris)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Paris)");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(svc.Drain());
  std::string s = svc.Metrics().ToString();
  // Satellite: the per-shard lines carry the new pending/snapshot/drain
  // fields; the service line keeps its stable shape.
  std::string shard_line = s.substr(s.find("  shard 0:"));
  EXPECT_NE(shard_line.find("pending="), std::string::npos) << s;
  EXPECT_NE(shard_line.find("snapshot_version="), std::string::npos) << s;
  EXPECT_NE(shard_line.find("drain_ops_per_sec="), std::string::npos) << s;
  EXPECT_NE(s.find("service: submitted="), std::string::npos) << s;
  EXPECT_NE(s.find("qps="), std::string::npos) << s;
}

// -------------------------------------------------------- slow-query log --

TEST(SlowQueryLogTest, SinkReceivesFullTraceAboveThreshold) {
  std::mutex mu;
  std::vector<QueryTrace> slow;
  ServiceOptions o = Opts(1);
  o.trace_all = false;  // the threshold alone must force full tracing
  o.slow_query_threshold_ms = 1e-6;  // everything is "slow"
  o.slow_query_sink = [&](const QueryTrace& t) {
    std::lock_guard<std::mutex> lock(mu);
    slow.push_back(t);
  };
  CoordinationService svc(std::move(o));
  EXPECT_TRUE(svc.traces().options().trace_all);  // implied by the threshold

  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Paris)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Paris)");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(svc.Drain());

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(slow.size(), 2u);
  for (const QueryTrace& t : slow) {
    EXPECT_TRUE(t.resolved);
    EXPECT_GE(t.events.size(), 5u);  // the full lifecycle, not a stub
    EXPECT_EQ(t.events.back().kind, TraceEventKind::kResolved);
  }
}

TEST(SlowQueryLogTest, FastQueriesBelowThresholdStayQuiet) {
  std::atomic<int> fired{0};
  ServiceOptions o = Opts(1);
  o.slow_query_threshold_ms = 60000;  // a minute: nothing qualifies
  o.slow_query_sink = [&](const QueryTrace&) { fired.fetch_add(1); };
  CoordinationService svc(std::move(o));
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Paris)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Paris)");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(svc.Drain());
  EXPECT_EQ(fired.load(), 0);
}

// ------------------------------------------------------- session facade --

TEST(SessionObservabilityTest, PassthroughsReachTheService) {
  CoordinationService svc(Opts(1));
  client::Session session(&svc);
  auto t = session.SubmitIr("{R(J, x)} R(K, x) :- F(x, Paris)");
  auto u = session.SubmitIr("{R(K, y)} R(J, y) :- F(y, Paris)");
  ASSERT_TRUE(t.ok() && u.ok());
  ASSERT_TRUE(svc.Drain());
  EXPECT_EQ(session.Metrics().answered, 2u);
  auto trace = session.Trace(*t);
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->resolved);
  EXPECT_TRUE(session.DumpState().shards[0].pending.empty());
}

// ---------------------------------------------------------- concurrency --

TEST(ObservabilityConcurrencyTest, TraceAndDumpStateRaceLiveTraffic) {
  // TSan target: observation (Trace/DumpState/Metrics/exporters) must be
  // safe against concurrent submissions, writes, and resolutions.
  CoordinationService svc(Opts(2, EvalMode::kIncremental));
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> max_ticket{1};

  std::thread submitter([&] {
    for (int i = 0; i < 40 && !stop.load(); ++i) {
      std::string rel = "Rel" + std::to_string(i);
      auto a = svc.SubmitAsync("{" + rel + "(J, x)} " + rel +
                               "(K, x) :- F(x, Paris)");
      auto b = svc.SubmitAsync("{" + rel + "(K, y)} " + rel +
                               "(J, y) :- F(y, Paris)");
      if (b.ok()) max_ticket.store(b->id());
    }
  });
  std::thread writer([&] {
    for (int i = 0; i < 40 && !stop.load(); ++i) {
      Status s =
          svc.ApplyWrite("F", {ir::Value::Int(1000 + i),
                               ir::Value::Str(svc.interner().Intern("Paris"))});
      (void)s;
    }
  });

  for (int i = 0; i < 30; ++i) {
    ServiceStateDump dump = svc.DumpState();
    (void)dump.ToString();
    ServiceMetrics m = svc.Metrics();
    (void)MetricsToPrometheusText(m);
    (void)MetricsToJson(m);
    auto trace = svc.Trace(1 + static_cast<TicketId>(i) %
                                   max_ticket.load());
    if (trace.ok()) (void)trace->ToString();
    (void)svc.ShardTraceRing(i % 2).Snapshot();
  }

  submitter.join();
  writer.join();
  stop.store(true);
  ASSERT_TRUE(svc.Drain());
  EXPECT_EQ(svc.inflight_count(), 0u);
}

}  // namespace
}  // namespace eq::service
