#include <gtest/gtest.h>
#include "db/database.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/partitioner.h"
#include "ir/parser.h"
#include "service/router.h"
#include "service/service.h"
#include "util/rng.h"

namespace eq::service {
namespace {

using engine::EvalMode;

/// Every shard gets the Figure 1 flight database (plus a generic relation
/// pool for the routing tests).
void FlightBootstrap(ir::QueryContext* ctx, db::Database* db) {
  ASSERT_TRUE(db->CreateTable("F", {{"fno", ir::ValueType::kInt},
                                    {"dest", ir::ValueType::kString}})
                  .ok());
  ASSERT_TRUE(db->CreateTable("A", {{"fno", ir::ValueType::kInt},
                                    {"airline", ir::ValueType::kString}})
                  .ok());
  auto S = [&](const char* s) { return ir::Value::Str(ctx->Intern(s)); };
  ASSERT_TRUE(db->Insert("F", {ir::Value::Int(122), S("Paris")}).ok());
  ASSERT_TRUE(db->Insert("F", {ir::Value::Int(123), S("Paris")}).ok());
  ASSERT_TRUE(db->Insert("F", {ir::Value::Int(134), S("Paris")}).ok());
  ASSERT_TRUE(db->Insert("F", {ir::Value::Int(136), S("Rome")}).ok());
  ASSERT_TRUE(db->Insert("A", {ir::Value::Int(122), S("United")}).ok());
  ASSERT_TRUE(db->Insert("A", {ir::Value::Int(123), S("United")}).ok());
  ASSERT_TRUE(db->Insert("A", {ir::Value::Int(134), S("Lufthansa")}).ok());
  ASSERT_TRUE(db->Insert("A", {ir::Value::Int(136), S("Alitalia")}).ok());
}

ServiceOptions Opts(uint32_t shards, EvalMode mode = EvalMode::kSetAtATime) {
  ServiceOptions o;
  o.num_shards = shards;
  o.mode = mode;
  o.max_batch = 16;
  o.max_delay_ticks = 1;
  o.bootstrap = FlightBootstrap;
  return o;
}

/// A mutually-coordinating pair entangled through relation `rel`, tagged
/// with distinct users so pairs with distinct relations never unify.
std::pair<std::string, std::string> PairFor(const std::string& rel, int i) {
  std::string a = "K" + std::to_string(i);
  std::string b = "J" + std::to_string(i);
  return {"{" + rel + "(" + b + ", x)} " + rel + "(" + a +
              ", x) :- F(x, Paris)",
          "{" + rel + "(" + a + ", y)} " + rel + "(" + b +
              ", y) :- F(y, Paris)"};
}

// ---------------------------------------------------------------- router --

TEST(QueryRouterTest, ExtractsEntangledRelations) {
  auto rels = QueryRouter::EntangledRelationsOf(
      "kramer: {R(Jerry, x), Gift(Elaine, g)} R(Kramer, x) "
      ":- F(x, Paris), A(x, United)");
  ASSERT_TRUE(rels.ok());
  EXPECT_EQ(*rels, (std::vector<std::string>{"Gift", "R"}));
  // Body relations (F, A) and the label are not entangled relations.
}

TEST(QueryRouterTest, ExtractionIgnoresQuotedText) {
  auto rels = QueryRouter::EntangledRelationsOf(
      "{R('weird :- Rel(', x)} R(Kramer, x) :- F(x, 'dest (odd)')");
  ASSERT_TRUE(rels.ok());
  EXPECT_EQ(*rels, (std::vector<std::string>{"R"}));
  // Double-quoted literals (also accepted by ir::Parser, and emitted by
  // PortableQuery::ToIrText for payloads containing a single quote).
  auto rels2 = QueryRouter::EntangledRelationsOf(
      "{R(\"it's :- Odd(\", x)} R(Kramer, x) :- F(x, \"y'know\")");
  ASSERT_TRUE(rels2.ok());
  EXPECT_EQ(*rels2, (std::vector<std::string>{"R"}));
}

TEST(QueryRouterTest, RejectsTextWithoutEntangledAtoms) {
  auto rels = QueryRouter::EntangledRelationsOf("   choose 2");
  EXPECT_FALSE(rels.ok());
  EXPECT_EQ(rels.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryRouterTest, SharedRelationMeansSameShard) {
  QueryRouter router(8);
  auto a = router.RouteQuery("{R(J, x)} R(K, x) :- F(x, Paris)");
  auto b = router.RouteQuery("{R(K, y)} R(J, y) :- F(y, Paris)");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->shard, b->shard);
  auto c = router.RouteQuery("{Gift(E, g)} Gift(G, g) :- F(g, Rome)");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(router.group_count(), 2u);
}

TEST(QueryRouterTest, DisjointGroupsBalanceAcrossShards) {
  QueryRouter router(4);
  std::set<uint32_t> used;
  for (int i = 0; i < 16; ++i) {
    auto r = router.RouteQuery(PairFor("Rel" + std::to_string(i), i).first);
    ASSERT_TRUE(r.ok());
    used.insert(r->shard);
  }
  // 16 independent groups over 4 shards, least-loaded placement: all used.
  EXPECT_EQ(used.size(), 4u);
}

TEST(QueryRouterTest, MergeReportsMovedRelations) {
  QueryRouter router(2);
  // Two groups pinned to distinct shards (least-loaded placement).
  auto a = router.RouteQuery("{Ra(J, x)} Ra(K, x) :- F(x, Paris)");
  auto b = router.RouteQuery("{Rb(J, y), Rc(E, y)} Rb(K, y) :- F(y, Paris)");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_NE(a->shard, b->shard);
  EXPECT_TRUE(a->moved_relations.empty());
  EXPECT_TRUE(b->moved_relations.empty());
  // Grow group Ra so it wins the merge.
  ASSERT_TRUE(router.RouteQuery("{Ra(K, z)} Ra(J, z) :- F(z, Paris)").ok());
  // Bridge: the Rb/Rc group loses and every one of its relations moves.
  auto bridge =
      router.RouteQuery("{Ra(J, w), Rb(K, w)} Ra(K, w) :- F(w, Paris)");
  ASSERT_TRUE(bridge.ok());
  EXPECT_TRUE(bridge->merged_groups);
  EXPECT_EQ(bridge->shard, a->shard);
  std::vector<std::string> moved = bridge->moved_relations;
  std::sort(moved.begin(), moved.end());
  EXPECT_EQ(moved, (std::vector<std::string>{"Rb", "Rc"}));
  EXPECT_EQ(router.ShardOfRelation("Rc"), a->shard);
}

TEST(QueryRouterTest, RouteRelationsMatchesRouteQuery) {
  QueryRouter by_text(4), by_rels(4);
  auto a = by_text.RouteQuery("{R(J, x), Gift(E, g)} R(K, x) :- F(x, P)");
  auto b = by_rels.RouteRelations({"Gift", "R"});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->shard, b->shard);
  EXPECT_EQ(a->relations, b->relations);
  EXPECT_FALSE(by_rels.RouteRelations({}).ok());
}

/// Property test: any two queries sharing an entangled relation are routed
/// to the same shard, on randomized multi-relation workloads, checked
/// against the ground truth of core::Partitioner::RelationComponents.
TEST(QueryRouterTest, ColocationMatchesRelationComponents) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    QueryRouter router(1 + rng.Below(7));
    ir::QueryContext ctx;
    ir::QuerySet qs;
    std::vector<uint32_t> shard_of;
    const int num_rels = 2 + static_cast<int>(rng.Below(10));
    const int num_queries = 1 + static_cast<int>(rng.Below(40));
    ir::Parser parser(&ctx);
    for (int q = 0; q < num_queries; ++q) {
      // 1-3 entangled relations drawn from a small pool → frequent overlap
      // and occasional multi-group merges.
      std::set<int> picks;
      int k = 1 + static_cast<int>(rng.Below(std::min(3, num_rels)));
      while (static_cast<int>(picks.size()) < k) {
        picks.insert(static_cast<int>(rng.Below(num_rels)));
      }
      std::string pc, head;
      int idx = 0;
      for (int rel : picks) {
        std::string r = "Rel" + std::to_string(rel);
        if (idx == 0) {
          head = r + "(U" + std::to_string(q) + ", x)";
        } else {
          if (!pc.empty()) pc += ", ";
          pc += r + "(V" + std::to_string(q) + "_" + std::to_string(idx) +
                ", x)";
        }
        ++idx;
      }
      if (pc.empty()) {
        pc = "Rel" + std::to_string(*picks.begin()) + "(W" +
             std::to_string(q) + ", x)";
      }
      std::string text = "{" + pc + "} " + head + " :- F(x, Paris)";
      auto decision = router.RouteQuery(text);
      ASSERT_TRUE(decision.ok()) << text;
      shard_of.push_back(decision->shard);
      auto parsed = parser.ParseQuery(text);
      ASSERT_TRUE(parsed.ok()) << text;
      qs.queries.push_back(std::move(*parsed));
    }
    qs.AssignIds();
    // Ground truth: after all merges, every relation component must sit on
    // one shard. (Current router state — earlier placements may have been
    // migrated, which the service layer handles; the router's final answer
    // is what governs placement.)
    for (const auto& component : core::Partitioner::RelationComponents(qs)) {
      std::set<uint32_t> shards;
      for (ir::QueryId q : component) {
        for (SymbolId rel :
             core::Partitioner::EntangledRelations(qs.queries[q])) {
          shards.insert(
              router.ShardOfRelation(ctx.interner().Name(rel)));
        }
      }
      EXPECT_EQ(shards.size(), 1u)
          << "round " << round << ": relation component spans shards";
    }
    (void)shard_of;
  }
}

// --------------------------------------------------------------- service --

TEST(CoordinationServiceTest, PairCoordinatesAcrossSubmissions) {
  CoordinationService svc(Opts(4));
  auto [qa, qb] = PairFor("R", 0);
  auto ta = svc.SubmitAsync(qa);
  auto tb = svc.SubmitAsync(qb);
  ASSERT_TRUE(ta.ok() && tb.ok());
  ASSERT_TRUE(svc.Drain());
  ASSERT_TRUE(ta->Done() && tb->Done());
  EXPECT_EQ(ta->outcome().state, ServiceOutcome::State::kAnswered);
  EXPECT_EQ(tb->outcome().state, ServiceOutcome::State::kAnswered);
  ASSERT_EQ(ta->outcome().tuples.size(), 1u);
  // Coordinated: both sides name the same flight.
  std::string fa = ta->outcome().tuples[0];
  std::string fb = tb->outcome().tuples[0];
  EXPECT_EQ(fa.substr(fa.find(',')), fb.substr(fb.find(',')));
}

TEST(CoordinationServiceTest, CallbackDeliveryAndFutureAgree) {
  CoordinationService svc(Opts(2));
  std::atomic<int> calls{0};
  ServiceOutcome via_callback;
  auto [qa, qb] = PairFor("R", 1);
  auto ta = svc.SubmitAsync(qa, 0, [&](TicketId, const ServiceOutcome& o) {
    via_callback = o;
    calls.fetch_add(1);
  });
  auto tb = svc.SubmitAsync(qb);
  ASSERT_TRUE(ta.ok() && tb.ok());
  ASSERT_TRUE(svc.Drain());
  ta->Wait();
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(via_callback.state, ServiceOutcome::State::kAnswered);
}

TEST(CoordinationServiceTest, DisjointPairsSpreadOverShardsAndAllAnswer) {
  const int kPairs = 32;
  CoordinationService svc(Opts(4));
  std::vector<Ticket> tickets;
  for (int i = 0; i < kPairs; ++i) {
    auto [qa, qb] = PairFor("Rel" + std::to_string(i), i);
    auto ta = svc.SubmitAsync(qa);
    auto tb = svc.SubmitAsync(qb);
    ASSERT_TRUE(ta.ok() && tb.ok());
    tickets.push_back(*ta);
    tickets.push_back(*tb);
  }
  ASSERT_TRUE(svc.Drain());
  for (const Ticket& t : tickets) {
    ASSERT_TRUE(t.Done());
    EXPECT_EQ(t.outcome().state, ServiceOutcome::State::kAnswered)
        << t.outcome().status.ToString();
  }
  ServiceMetrics m = svc.Metrics();
  EXPECT_EQ(m.answered, 2u * kPairs);
  EXPECT_EQ(m.pending, 0u);
  // Every shard took part of the load.
  for (const auto& shard : m.shards) {
    EXPECT_GT(shard.submitted, 0u) << "shard " << shard.shard_id;
  }
}

TEST(CoordinationServiceTest, PartnerlessQueryFailsOnFlush) {
  CoordinationService svc(Opts(2));
  auto t = svc.SubmitAsync("{R(Ghost, x)} R(Newman, x) :- F(x, Rome)");
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(svc.Drain());
  EXPECT_EQ(t->outcome().state, ServiceOutcome::State::kFailed);
  EXPECT_EQ(t->outcome().status.code(), StatusCode::kUnsatisfiable);
}

TEST(CoordinationServiceTest, ParseErrorFailsSynchronously) {
  // Routable (R appears applied) but unparsable: the edge parses IR at
  // submission now, so all three dialects report malformed input before a
  // ticket exists.
  CoordinationService svc(Opts(2));
  auto t = svc.SubmitAsync("{R(J, x)} R(K, x :- F(x,");  // malformed
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  EXPECT_EQ(svc.Metrics().parse_errors, 1u);
  EXPECT_EQ(svc.inflight_count(), 0u);
}

TEST(CoordinationServiceTest, UnroutableTextFailsSynchronously) {
  CoordinationService svc(Opts(2));
  auto t = svc.SubmitAsync("not a query at all");
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(CoordinationServiceTest, CancelResolvesAsCancelled) {
  CoordinationService svc(Opts(2));
  auto t = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Paris)");
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(svc.Cancel(*t).ok());
  t->Wait();
  EXPECT_EQ(t->outcome().state, ServiceOutcome::State::kFailed);
  EXPECT_EQ(t->outcome().status.code(), StatusCode::kCancelled);
  EXPECT_EQ(svc.inflight_count(), 0u);
  // Cancelling again: the ticket already left the inflight table.
  EXPECT_EQ(svc.Cancel(*t).code(), StatusCode::kNotFound);
}

TEST(CoordinationServiceTest, ManualTicksExpireStaleQueries) {
  // Incremental mode: a partnerless query waits (no batch flush to fail
  // it), so the staleness clock is what resolves it.
  CoordinationService svc(Opts(2, EvalMode::kIncremental));
  auto t = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Paris)",
                           /*ttl_ticks=*/3);
  ASSERT_TRUE(t.ok());
  svc.AdvanceTicks(5);
  ASSERT_TRUE(t->WaitFor(std::chrono::milliseconds(2000)));
  EXPECT_EQ(t->outcome().status.code(), StatusCode::kTimeout);
  EXPECT_EQ(svc.Metrics().expired, 1u);
}

TEST(CoordinationServiceTest, WallClockTickerExpiresStaleQueries) {
  ServiceOptions o = Opts(2, EvalMode::kIncremental);
  o.tick_interval = std::chrono::milliseconds(5);
  CoordinationService svc(o);
  auto t = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Paris)",
                           /*ttl_ticks=*/3);
  ASSERT_TRUE(t.ok());
  // ~15ms of wall clock; give the ticker ample slack.
  ASSERT_TRUE(t->WaitFor(std::chrono::milliseconds(5000)));
  EXPECT_EQ(t->outcome().status.code(), StatusCode::kTimeout);
}

TEST(CoordinationServiceTest, GroupMergeMigratesStrandedQueries) {
  // Force two groups onto different shards, then bridge them: the stranded
  // side must migrate so the three-way cycle coordinates on one shard.
  CoordinationService svc(Opts(2));
  // Group Ra → shard A (least-loaded placement), group Rb → shard B.
  auto t1 = svc.SubmitAsync("{Ra(Bob, x)} Ra(Alice, x) :- F(x, Paris)");
  auto t2 = svc.SubmitAsync("{Rb(Carol, y)} Rb(Dan, y) :- F(y, Paris)");
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_NE(svc.router().ShardOfRelation("Ra"),
            svc.router().ShardOfRelation("Rb"));
  // Bridge: answers Alice's postcondition, needs Dan's head relation.
  auto t3 = svc.SubmitAsync(
      "{Ra(Alice, z), Rb(Dan, z)} Ra(Bob, z), Rb(Carol, z) :- F(z, Paris)");
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ(svc.router().ShardOfRelation("Ra"),
            svc.router().ShardOfRelation("Rb"));
  ASSERT_TRUE(svc.Drain());
  ServiceMetrics m = svc.Metrics();
  EXPECT_GE(m.migrations, 1u);
  EXPECT_EQ(t1->outcome().state, ServiceOutcome::State::kAnswered)
      << t1->outcome().status.ToString();
  EXPECT_EQ(t2->outcome().state, ServiceOutcome::State::kAnswered)
      << t2->outcome().status.ToString();
  EXPECT_EQ(t3->outcome().state, ServiceOutcome::State::kAnswered)
      << t3->outcome().status.ToString();
}

TEST(CoordinationServiceTest, CancelDuringMigrationStillResolves) {
  // Regression: a cancel racing a group-merge migration used to be sent to
  // the old shard (which had already extracted the query) and get lost,
  // leaving the ticket pending forever.
  CoordinationService svc(Opts(2));
  auto t1 = svc.SubmitAsync("{Ra(Bob, x)} Ra(Alice, x) :- F(x, Paris)");
  auto t2 = svc.SubmitAsync("{Rb(Carol, y)} Rb(Dan, y) :- F(y, Paris)");
  ASSERT_TRUE(t1.ok() && t2.ok());
  auto t3 = svc.SubmitAsync(
      "{Ra(Alice, z), Rb(Dan, z)} Ra(Bob, z), Rb(Carol, z) :- F(z, Paris)");
  ASSERT_TRUE(t3.ok());
  // One of t1/t2 is now stranded and mid-migration; withdraw both sides —
  // each must resolve (as Cancelled) whichever path its cancel takes.
  EXPECT_TRUE(svc.Cancel(*t1).ok());
  EXPECT_TRUE(svc.Cancel(*t2).ok());
  ASSERT_TRUE(svc.Drain());
  ASSERT_TRUE(t1->WaitFor(std::chrono::milliseconds(5000)));
  ASSERT_TRUE(t2->WaitFor(std::chrono::milliseconds(5000)));
  ASSERT_TRUE(t3->WaitFor(std::chrono::milliseconds(5000)));
  EXPECT_EQ(t1->outcome().status.code(), StatusCode::kCancelled);
  EXPECT_EQ(t2->outcome().status.code(), StatusCode::kCancelled);
  // The bridge query lost both partners: failed, not hung.
  EXPECT_EQ(t3->outcome().state, ServiceOutcome::State::kFailed);
  EXPECT_EQ(svc.inflight_count(), 0u);
}

TEST(CoordinationServiceTest, DestructorResolvesPendingTickets) {
  // Regression: destroying the service with unresolved queries must fail
  // their tickets, not leave waiters blocked forever.
  Ticket t;
  {
    CoordinationService svc(Opts(2));
    auto r = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Paris)");
    ASSERT_TRUE(r.ok());
    t = *r;
  }  // no Drain
  ASSERT_TRUE(t.Done());
  EXPECT_EQ(t.outcome().state, ServiceOutcome::State::kFailed);
  EXPECT_EQ(t.outcome().status.code(), StatusCode::kCancelled);
}

TEST(CoordinationServiceTest, InvalidTicketAccessorsAreSafe) {
  Ticket empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_EQ(empty.id(), 0u);
  EXPECT_TRUE(empty.Done());
  EXPECT_TRUE(empty.WaitFor(std::chrono::milliseconds(1)));
  EXPECT_EQ(empty.Wait().state, ServiceOutcome::State::kFailed);
  EXPECT_EQ(empty.outcome().status.code(), StatusCode::kInvalidArgument);
}

TEST(CoordinationServiceTest, IncrementalModeAnswersWithoutFlush) {
  CoordinationService svc(Opts(2, EvalMode::kIncremental));
  auto [qa, qb] = PairFor("R", 2);
  auto ta = svc.SubmitAsync(qa);
  auto tb = svc.SubmitAsync(qb);
  ASSERT_TRUE(ta.ok() && tb.ok());
  // No Drain: incremental engines answer on partner arrival.
  ASSERT_TRUE(ta->WaitFor(std::chrono::milliseconds(5000)));
  ASSERT_TRUE(tb->WaitFor(std::chrono::milliseconds(5000)));
  EXPECT_EQ(ta->outcome().state, ServiceOutcome::State::kAnswered);
  EXPECT_EQ(tb->outcome().state, ServiceOutcome::State::kAnswered);
}

TEST(CoordinationServiceTest, MetricsAggregateAcrossShards) {
  CoordinationService svc(Opts(3));
  std::vector<Ticket> tickets;
  for (int i = 0; i < 12; ++i) {
    auto [qa, qb] = PairFor("Rel" + std::to_string(i), i);
    tickets.push_back(*svc.SubmitAsync(qa));
    tickets.push_back(*svc.SubmitAsync(qb));
  }
  // One partnerless straggler and one cancel.
  auto lone = svc.SubmitAsync("{Lone(Ghost, x)} Lone(Newman, x) :- F(x, Rome)");
  auto gone = svc.SubmitAsync("{Gone(A, x)} Gone(B, x) :- F(x, Rome)");
  ASSERT_TRUE(lone.ok() && gone.ok());
  ASSERT_TRUE(svc.Cancel(*gone).ok());
  ASSERT_TRUE(svc.Drain());

  ServiceMetrics m = svc.Metrics();
  EXPECT_EQ(m.submitted, 26u);
  EXPECT_EQ(m.answered, 24u);
  EXPECT_EQ(m.failed, 2u);
  EXPECT_EQ(m.cancelled, 1u);
  EXPECT_EQ(m.pending, 0u);
  EXPECT_EQ(m.shards.size(), 3u);
  uint64_t per_shard_sum = 0;
  for (const auto& s : m.shards) per_shard_sum += s.submitted;
  EXPECT_EQ(per_shard_sum, m.submitted);
  EXPECT_GT(m.p50_latency_ms, 0.0);
  EXPECT_GE(m.p99_latency_ms, m.p50_latency_ms);
  EXPECT_FALSE(m.ToString().empty());
}

// The ThreadSanitizer workhorse: many client threads submitting and
// cancelling against a live staleness ticker, across shards.
TEST(CoordinationServiceTest, ConcurrentSubmitCancelAndTicker) {
  // Incremental mode: coordination fires on partner arrival, so batch
  // windows cannot split a pair and the exact answered count is stable.
  ServiceOptions o = Opts(4, EvalMode::kIncremental);
  o.tick_interval = std::chrono::milliseconds(1);
  o.max_delay_ticks = 2;
  CoordinationService svc(o);

  constexpr int kThreads = 4;
  constexpr int kPairsPerThread = 25;
  std::atomic<int> cancelled_ok{0};
  std::vector<std::thread> clients;
  std::vector<std::vector<Ticket>> per_thread(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPairsPerThread; ++i) {
        std::string rel =
            "T" + std::to_string(t) + "_" + std::to_string(i);
        auto [qa, qb] = PairFor(rel, t * 1000 + i);
        auto ta = svc.SubmitAsync(qa, /*ttl_ticks=*/1000000);
        auto tb = svc.SubmitAsync(qb, /*ttl_ticks=*/1000000);
        ASSERT_TRUE(ta.ok() && tb.ok());
        per_thread[t].push_back(*ta);
        per_thread[t].push_back(*tb);
        // Sprinkle cancellations on a partnerless extra query.
        if (i % 5 == 0) {
          auto tc = svc.SubmitAsync("{X" + rel + "(A, x)} X" + rel +
                                    "(B, x) :- F(x, Rome)");
          ASSERT_TRUE(tc.ok());
          if (svc.Cancel(*tc).ok()) cancelled_ok.fetch_add(1);
          per_thread[t].push_back(*tc);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  ASSERT_TRUE(svc.Drain());
  for (const auto& tickets : per_thread) {
    for (const Ticket& t : tickets) {
      ASSERT_TRUE(t.WaitFor(std::chrono::milliseconds(10000)));
    }
  }
  ServiceMetrics m = svc.Metrics();
  EXPECT_EQ(m.pending, 0u);
  EXPECT_EQ(m.submitted, m.answered + m.failed + m.migrations);
  // Every coordinating pair answered (TTL is generous; ticks only flush).
  EXPECT_GE(m.answered, 2u * kThreads * kPairsPerThread);
}

// ----------------------------------------- shared snapshots & writes ----

TEST(SharedSnapshotTest, BootstrapRunsOnceAndShardsShareTableVersions) {
  // Tentpole invariant: with N=8 shards the bootstrap runs exactly once
  // (against the shared storage), and every shard's adopted snapshot
  // references the SAME immutable TableVersion objects by pointer — no
  // per-shard copies, startup independent of shard count.
  auto calls = std::make_shared<std::atomic<int>>(0);
  ServiceOptions o = Opts(8);
  o.bootstrap = [calls](ir::QueryContext* ctx, db::Database* db) {
    calls->fetch_add(1);
    FlightBootstrap(ctx, db);
  };
  CoordinationService svc(o);
  EXPECT_EQ(calls->load(), 1);

  // Run a little traffic so every shard is demonstrably live.
  std::vector<Ticket> tickets;
  for (int i = 0; i < 16; ++i) {
    auto [qa, qb] = PairFor("Rel" + std::to_string(i), i);
    auto a = svc.SubmitAsync(qa);
    auto b = svc.SubmitAsync(qb);
    ASSERT_TRUE(a.ok() && b.ok());
    tickets.push_back(*a);
    tickets.push_back(*b);
  }
  ASSERT_TRUE(svc.Drain());
  for (const Ticket& t : tickets) {
    EXPECT_EQ(t.outcome().state, ServiceOutcome::State::kAnswered);
  }

  db::Snapshot master = svc.storage().Current();
  const db::TableVersion* f = master.GetTable("F");
  const db::TableVersion* a = master.GetTable("A");
  ASSERT_NE(f, nullptr);
  ASSERT_NE(a, nullptr);
  for (uint32_t s = 0; s < svc.num_shards(); ++s) {
    db::Snapshot shard_view = svc.ShardSnapshot(s);
    ASSERT_TRUE(shard_view.valid());
    EXPECT_EQ(shard_view.GetTable("F"), f) << "shard " << s;
    EXPECT_EQ(shard_view.GetTable("A"), a) << "shard " << s;
  }
}

TEST(SharedSnapshotTest, ApplyWriteRoundTripVisibleAfterNextFlush) {
  // Live write ingestion: a row written through the service becomes part
  // of a new published version, and a pair coordinating on it answers
  // after the shards' next flush boundary.
  CoordinationService svc(Opts(4));
  // Barrier: every shard has adopted the bootstrap version before the
  // write, so the visibility below provably goes through a refresh.
  svc.FlushAll();
  uint64_t v0 = svc.storage().version();
  ASSERT_TRUE(svc.ApplyWrite("F", {ir::Value::Int(800),
                                   ir::Value::Str(
                                       svc.interner().Intern("Vienna"))})
                  .ok());
  EXPECT_EQ(svc.storage().version(), v0 + 1);

  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Vienna)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Vienna)");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(svc.Drain());
  ASSERT_EQ(a->outcome().state, ServiceOutcome::State::kAnswered)
      << a->outcome().status.ToString();
  ASSERT_EQ(b->outcome().state, ServiceOutcome::State::kAnswered)
      << b->outcome().status.ToString();
  EXPECT_NE(a->outcome().tuples[0].find("800"), std::string::npos);
  // The owning shard refreshed to the written version.
  ServiceMetrics m = svc.Metrics();
  EXPECT_EQ(m.max_snapshot_version, svc.storage().version());
  EXPECT_GE(m.snapshot_refreshes, 1u);
}

TEST(SharedSnapshotTest, ApplyBatchPublishesOneVersion) {
  CoordinationService svc(Opts(2));
  uint64_t v0 = svc.storage().version();
  std::vector<db::Storage::TableWrite> writes;
  for (int i = 0; i < 8; ++i) {
    writes.push_back({"F", {ir::Value::Int(900 + i),
                            ir::Value::Str(svc.interner().Intern("Oslo"))}});
  }
  ASSERT_TRUE(svc.ApplyBatch(writes).ok());
  EXPECT_EQ(svc.storage().version(), v0 + 1);

  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Oslo)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Oslo)");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(svc.Drain());
  EXPECT_EQ(a->outcome().state, ServiceOutcome::State::kAnswered);
  EXPECT_EQ(b->outcome().state, ServiceOutcome::State::kAnswered);
}

TEST(SharedSnapshotTest, ConcurrentWritersAndSubmittersStayConsistent) {
  // Races exercised under TSan: writer threads publishing new versions
  // through the shared storage while client threads submit coordinating
  // pairs (including pairs that can only answer once some write landed:
  // each round writes its destination BEFORE submitting the pair that
  // joins on it, so after a final drain everything must have answered).
  constexpr int kWriters = 2;
  constexpr int kClients = 3;
  constexpr int kRounds = 25;
  // Incremental mode: each pair coordinates on partner arrival (a batch
  // window cannot split it into a partnerless failure), and the shard
  // refreshes its snapshot before every submit — so the write that each
  // round performs before submitting is always visible to its own pair.
  ServiceOptions o = Opts(4, EvalMode::kIncremental);
  o.max_delay_ticks = 1;
  CoordinationService svc(o);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&svc, &stop, w] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ASSERT_TRUE(
            svc.ApplyWrite("F",
                           {ir::Value::Int(10000 + w * 100000 + i),
                            ir::Value::Str(svc.interner().Intern("Noise"))})
                .ok());
        ++i;
        std::this_thread::yield();
      }
    });
  }

  std::vector<std::vector<Ticket>> per_client(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&svc, &per_client, c] {
      for (int i = 0; i < kRounds; ++i) {
        std::string dest = "City" + std::to_string(c) + "_" +
                           std::to_string(i);
        ASSERT_TRUE(svc.ApplyWrite(
                           "F", {ir::Value::Int(20000 + c * 1000 + i),
                                 ir::Value::Str(
                                     svc.interner().Intern(dest))})
                        .ok());
        std::string rel =
            "W" + std::to_string(c) + "_" + std::to_string(i);
        auto a = svc.SubmitAsync("{" + rel + "(B, x)} " + rel +
                                 "(A, x) :- F(x, " + dest + ")");
        auto b = svc.SubmitAsync("{" + rel + "(A, y)} " + rel +
                                 "(B, y) :- F(y, " + dest + ")");
        ASSERT_TRUE(a.ok() && b.ok());
        per_client[c].push_back(*a);
        per_client[c].push_back(*b);
        if (i % 8 == 0) svc.AdvanceTicks(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  ASSERT_TRUE(svc.Drain());
  for (const auto& tickets : per_client) {
    for (const Ticket& t : tickets) {
      EXPECT_EQ(t.outcome().state, ServiceOutcome::State::kAnswered)
          << t.outcome().status.ToString();
    }
  }
  EXPECT_GE(svc.storage().version(),
            1u + kClients * kRounds);  // every write published a version
}

// ------------------------------------------------ reactive wake-ups ----

/// Polls the aggregated pending gauge until it reaches `n` — i.e. the
/// shard threads have demonstrably processed the submissions and the
/// queries sit pending in their engines.
void WaitForPending(CoordinationService& svc, uint64_t n) {
  for (int i = 0; i < 5000 && svc.Metrics().pending < n; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(svc.Metrics().pending, n);
}

/// Polls until `wakeup_satisfied` reaches `n` and returns the metrics.
/// Ticket futures resolve inside the wake-up, a moment before the shard
/// thread publishes the wake-up counters — a reader woken by the ticket
/// must give the gauge that moment.
ServiceMetrics WaitForWakeupSatisfied(CoordinationService& svc, uint64_t n) {
  ServiceMetrics m = svc.Metrics();
  for (int i = 0; i < 5000 && m.wakeup_satisfied < n; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    m = svc.Metrics();
  }
  return m;
}

TEST(ReactiveWakeupTest, WriteAloneAnswersPendingPairIncremental) {
  // The acceptance scenario: a matched pair pending on data that does not
  // exist yet is answered by ApplyWrite ALONE — no Submit, no flush, no
  // tick after the write.
  CoordinationService svc(Opts(2, EvalMode::kIncremental));
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Vienna)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Vienna)");
  ASSERT_TRUE(a.ok() && b.ok());
  WaitForPending(svc, 2);
  EXPECT_FALSE(a->Done());
  EXPECT_FALSE(b->Done());

  ASSERT_TRUE(svc.ApplyWrite("F", {ir::Value::Int(800),
                                   ir::Value::Str(
                                       svc.interner().Intern("Vienna"))})
                  .ok());
  // Nothing else: the WriteNotify wake-up is the only possible resolver.
  ASSERT_TRUE(a->WaitFor(std::chrono::milliseconds(10000)));
  ASSERT_TRUE(b->WaitFor(std::chrono::milliseconds(10000)));
  EXPECT_EQ(a->outcome().state, ServiceOutcome::State::kAnswered)
      << a->outcome().status.ToString();
  EXPECT_EQ(b->outcome().state, ServiceOutcome::State::kAnswered)
      << b->outcome().status.ToString();
  EXPECT_NE(a->outcome().tuples[0].find("800"), std::string::npos);

  ServiceMetrics m = WaitForWakeupSatisfied(svc, 2);
  EXPECT_GE(m.write_wakeups, 1u);
  EXPECT_GE(m.wakeup_reevals, 1u);
  EXPECT_EQ(m.wakeup_satisfied, 2u);
  EXPECT_EQ(m.max_snapshot_version, svc.storage().version());
}

TEST(ReactiveWakeupTest, WriteWakesSetAtATimePairBeforeAnyFlush) {
  // Set-at-a-time: matching normally waits for a flush, but a wake-up
  // propagates the affected partition and answers it when it is fully
  // coordinable — the write is the third wake-up source next to arrivals
  // and ticks. No ticks and no Drain anywhere in this test.
  CoordinationService svc(Opts(2));  // kSetAtATime, no ticker
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Lisbon)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Lisbon)");
  ASSERT_TRUE(a.ok() && b.ok());
  WaitForPending(svc, 2);

  ASSERT_TRUE(svc.ApplyWrite("F", {ir::Value::Int(900),
                                   ir::Value::Str(
                                       svc.interner().Intern("Lisbon"))})
                  .ok());
  ASSERT_TRUE(a->WaitFor(std::chrono::milliseconds(10000)));
  ASSERT_TRUE(b->WaitFor(std::chrono::milliseconds(10000)));
  EXPECT_EQ(a->outcome().state, ServiceOutcome::State::kAnswered);
  EXPECT_EQ(b->outcome().state, ServiceOutcome::State::kAnswered);
  EXPECT_EQ(WaitForWakeupSatisfied(svc, 2).wakeup_satisfied, 2u);
  // The wake-up must not have flushed (it evaluates only the affected
  // partition; a flush would have failed partnerless stragglers).
  EXPECT_EQ(svc.Metrics().flushes, 0u);
}

TEST(ReactiveWakeupTest, UnrelatedWritesDoNotWakeAnyone) {
  // The pending pair reads F only; writes to A must not generate
  // WriteNotify traffic (the index is per-relation, not a broadcast).
  CoordinationService svc(Opts(2, EvalMode::kIncremental));
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Quito)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Quito)");
  ASSERT_TRUE(a.ok() && b.ok());
  WaitForPending(svc, 2);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(svc.ApplyWrite("A", {ir::Value::Int(7000 + i),
                                     ir::Value::Str(
                                         svc.interner().Intern("NoAir"))})
                    .ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(svc.Metrics().write_wakeups, 0u);
  EXPECT_FALSE(a->Done());

  // The relevant write still works after the noise.
  ASSERT_TRUE(svc.ApplyWrite("F", {ir::Value::Int(801),
                                   ir::Value::Str(
                                       svc.interner().Intern("Quito"))})
                  .ok());
  ASSERT_TRUE(a->WaitFor(std::chrono::milliseconds(10000)));
  ASSERT_TRUE(b->WaitFor(std::chrono::milliseconds(10000)));
  EXPECT_EQ(a->outcome().state, ServiceOutcome::State::kAnswered);
  EXPECT_GE(svc.Metrics().write_wakeups, 1u);
}

TEST(ReactiveWakeupTest, WakeupsDisabledRestoresFlushBoundVisibility) {
  // The A/B knob behind the reactive bench: with write_wakeups off, the
  // same scenario stays pending until an explicit flush boundary.
  ServiceOptions o = Opts(2);
  o.write_wakeups = false;
  CoordinationService svc(o);
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Havana)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Havana)");
  ASSERT_TRUE(a.ok() && b.ok());
  WaitForPending(svc, 2);
  ASSERT_TRUE(svc.ApplyWrite("F", {ir::Value::Int(802),
                                   ir::Value::Str(
                                       svc.interner().Intern("Havana"))})
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(a->Done());  // the write woke nothing
  EXPECT_EQ(svc.Metrics().write_wakeups, 0u);
  ASSERT_TRUE(svc.Drain());  // the old path: visible at the next flush
  EXPECT_EQ(a->outcome().state, ServiceOutcome::State::kAnswered);
  EXPECT_EQ(b->outcome().state, ServiceOutcome::State::kAnswered);
}

TEST(ReactiveWakeupTest, DeleteInvalidatesPreviouslyMatchableBody) {
  // F(136, Rome) exists at bootstrap. The pair is matchable when
  // submitted, but a delete lands before any evaluation: the wake-up
  // re-evaluates against the fresh snapshot (no data -> stays pending),
  // and the eventual flush must NOT resurrect the deleted row.
  CoordinationService svc(Opts(2));
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Rome)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Rome)");
  ASSERT_TRUE(a.ok() && b.ok());
  WaitForPending(svc, 2);

  size_t removed = 0;
  ASSERT_TRUE(svc.ApplyDelete("F", 1,
                              ir::Value::Str(svc.interner().Intern("Rome")),
                              &removed)
                  .ok());
  EXPECT_EQ(removed, 1u);
  ASSERT_TRUE(svc.Drain());
  EXPECT_EQ(a->outcome().state, ServiceOutcome::State::kFailed);
  EXPECT_EQ(a->outcome().status.code(), StatusCode::kNotFound)
      << a->outcome().status.ToString();
  EXPECT_EQ(b->outcome().state, ServiceOutcome::State::kFailed);
}

TEST(ReactiveWakeupTest, UpdateRedirectsPendingCoordination) {
  // An update (full-row replacement) both retracts and asserts: the pair
  // waits on Sydney, and rerouting an existing flight there satisfies it.
  CoordinationService svc(Opts(2, EvalMode::kIncremental));
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Sydney)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Sydney)");
  ASSERT_TRUE(a.ok() && b.ok());
  WaitForPending(svc, 2);

  size_t updated = 0;
  ASSERT_TRUE(svc.ApplyUpdate("F", 0, ir::Value::Int(136),
                              {ir::Value::Int(136),
                               ir::Value::Str(
                                   svc.interner().Intern("Sydney"))},
                              &updated)
                  .ok());
  EXPECT_EQ(updated, 1u);
  ASSERT_TRUE(a->WaitFor(std::chrono::milliseconds(10000)));
  ASSERT_TRUE(b->WaitFor(std::chrono::milliseconds(10000)));
  EXPECT_EQ(a->outcome().state, ServiceOutcome::State::kAnswered);
  EXPECT_NE(a->outcome().tuples[0].find("136"), std::string::npos);
}

// ------------------------------------------------ declarative writes ----

TEST(SqlWriteTest, UpdateStatementWakesPendingEntangledPair) {
  // The acceptance scenario for the declarative write path: a pending
  // entangled pair is answered by one SQL UPDATE — edge translation →
  // storage predicate matching → write-triggered wake-up, no flush, no
  // tick, no further submission.
  CoordinationService svc(Opts(2, EvalMode::kIncremental));
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Osaka)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Osaka)");
  ASSERT_TRUE(a.ok() && b.ok());
  WaitForPending(svc, 2);
  EXPECT_FALSE(a->Done());

  auto rows = svc.ExecuteWrite("UPDATE F SET dest = 'Osaka' WHERE fno = 136");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(*rows, 1u);
  ASSERT_TRUE(a->WaitFor(std::chrono::milliseconds(10000)));
  ASSERT_TRUE(b->WaitFor(std::chrono::milliseconds(10000)));
  EXPECT_EQ(a->outcome().state, ServiceOutcome::State::kAnswered)
      << a->outcome().status.ToString();
  EXPECT_EQ(b->outcome().state, ServiceOutcome::State::kAnswered);
  EXPECT_NE(a->outcome().tuples[0].find("136"), std::string::npos);
  ServiceMetrics m = WaitForWakeupSatisfied(svc, 2);
  EXPECT_GE(m.write_wakeups, 1u);
  EXPECT_EQ(m.wakeup_satisfied, 2u);
}

TEST(SqlWriteTest, DeleteStatementMatchesPredicatesAndReportsRows) {
  CoordinationService svc(Opts(1));
  uint64_t v1 = svc.storage().version();

  // Range + equality conjunction: exactly flights 122 and 123 (Paris,
  // <= 123) go; 134 (Paris) and 136 (Rome) stay.
  auto rows = svc.ExecuteWrite(
      "DELETE FROM F WHERE dest = 'Paris' AND fno <= 123");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(*rows, 2u);
  EXPECT_EQ(svc.storage().version(), v1 + 1);
  const db::TableVersion* f = svc.storage().Current().GetTable("F");
  EXPECT_EQ(f->row_count(), 2u);
  EXPECT_TRUE(f->AnyMatch(0, ir::Value::Int(134)));
  EXPECT_TRUE(f->AnyMatch(0, ir::Value::Int(136)));

  // Matching nothing: zero rows, no publish, no version churn.
  auto none = svc.ExecuteWrite("DELETE FROM F WHERE fno > 10000");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0u);
  EXPECT_EQ(svc.storage().version(), v1 + 1);
}

TEST(SqlWriteTest, DeleteStatementKeepsWokenSnapshotFresh) {
  // The SQL twin of DeleteInvalidatesPreviouslyMatchableBody: the pair is
  // matchable at submission, a declarative DELETE retracts the row before
  // any evaluation, and the eventual flush must not resurrect it.
  CoordinationService svc(Opts(2));
  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Rome)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Rome)");
  ASSERT_TRUE(a.ok() && b.ok());
  WaitForPending(svc, 2);

  auto rows = svc.ExecuteWrite("DELETE FROM F WHERE dest = 'Rome'");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(*rows, 1u);
  ASSERT_TRUE(svc.Drain());
  EXPECT_EQ(a->outcome().state, ServiceOutcome::State::kFailed);
  EXPECT_EQ(a->outcome().status.code(), StatusCode::kNotFound)
      << a->outcome().status.ToString();
}

TEST(SqlWriteTest, ExecuteWriteFailsSynchronouslyLikeSqlSubmission) {
  CoordinationService svc(Opts(1));
  uint64_t v1 = svc.storage().version();
  // Unknown table: kNotFound from the edge catalog, before any routing.
  EXPECT_EQ(svc.ExecuteWrite("DELETE FROM Ghost WHERE x = 1").status().code(),
            StatusCode::kNotFound);
  // Literal type mismatch against the schema: kInvalidArgument.
  EXPECT_EQ(
      svc.ExecuteWrite("UPDATE F SET dest = 42 WHERE fno = 1").status().code(),
      StatusCode::kInvalidArgument);
  // Malformed SQL: kParseError.
  EXPECT_EQ(svc.ExecuteWrite("DELETE F WHERE fno = 1").status().code(),
            StatusCode::kParseError);
  // Duplicate SET targets: rejected, not last-one-wins.
  EXPECT_EQ(svc.ExecuteWrite(
                   "UPDATE F SET dest = 'A', dest = 'B' WHERE fno = 122")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Nothing was applied or published by any of the failures.
  EXPECT_EQ(svc.storage().version(), v1);
  EXPECT_EQ(svc.storage().writes_applied(), 0u);
}

TEST(ReactiveWakeupTest, WriteBurstCoalescesNotifiesDeterministically) {
  // The wake-up-storm damper, pinned down with the on_write_wakeup seam:
  // wake-up #1 is held in place while five more writes land, so exactly
  // one more WriteNotify is queued (the first of the five) and the other
  // four merge into it — 6 writes, 2 wake-ups, 4 coalesced.
  ServiceOptions o = Opts(1, EvalMode::kIncremental);
  std::atomic<bool> arm{false};
  std::atomic<int> wakeups_seen{0};
  std::promise<void> entered;
  auto release = std::make_shared<std::promise<void>>();
  std::shared_future<void> gate = release->get_future().share();
  o.on_write_wakeup = [&](uint32_t) {
    if (arm.load(std::memory_order_acquire) &&
        wakeups_seen.fetch_add(1) == 0) {
      entered.set_value();
      gate.wait();
    }
  };
  CoordinationService svc(o);

  auto a = svc.SubmitAsync("{R(J, x)} R(K, x) :- F(x, Nowhere)");
  auto b = svc.SubmitAsync("{R(K, y)} R(J, y) :- F(y, Nowhere)");
  ASSERT_TRUE(a.ok() && b.ok());
  WaitForPending(svc, 2);  // pair registered in the wake-up index
  arm.store(true, std::memory_order_release);

  auto write = [&](int i) {
    ASSERT_TRUE(
        svc.ApplyWrite("F", {ir::Value::Int(90000 + i),
                             ir::Value::Str(svc.interner().Intern("Burst"))})
            .ok());
  };
  write(0);                     // wake-up #1 starts and parks on the gate
  entered.get_future().wait();
  for (int i = 1; i <= 5; ++i) write(i);  // 1 notify queued + 4 coalesced
  release->set_value();

  ServiceMetrics m = svc.Metrics();
  for (int i = 0; i < 5000 && m.write_wakeups < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    m = svc.Metrics();
  }
  EXPECT_EQ(m.write_wakeups, 2u);             // 6 writes, 2 re-evaluations
  EXPECT_EQ(m.write_notifies_coalesced, 4u);  // the storm, absorbed
  // The coalesced wake-up still adopted the newest version (no write was
  // swallowed): the shard's snapshot covers all six writes.
  EXPECT_EQ(m.max_snapshot_version, svc.storage().version());
}

// The reactive ThreadSanitizer workhorse: concurrent writers x submitters
// x deleters (plus an updater), wake-ups on. Client pairs coordinate on
// per-round destinations that only a write makes answerable; deleters and
// updaters churn disjoint Noise rows, so every pair must still answer.
TEST(ReactiveWakeupTest, ConcurrentWritersSubmittersDeletersStayConsistent) {
  constexpr int kClients = 3;
  constexpr int kRounds = 20;
  ServiceOptions o = Opts(4, EvalMode::kIncremental);
  CoordinationService svc(o);

  std::atomic<bool> stop{false};
  // Writer: keeps inserting Noise rows (wake-up fodder for the deleters).
  std::thread writer([&svc, &stop] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(
          svc.ApplyWrite("F", {ir::Value::Int(50000 + i),
                               ir::Value::Str(
                                   svc.interner().Intern("Noise"))})
              .ok());
      ++i;
      std::this_thread::yield();
    }
  });
  // Deleter: retracts the Noise rows wholesale, racing the writer.
  std::thread deleter([&svc, &stop] {
    ir::Value noise = ir::Value::Str(svc.interner().Intern("Noise"));
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(svc.ApplyDelete("F", 1, noise).ok());
      std::this_thread::yield();
    }
  });
  // Updater: reroutes one bootstrap Rome flight back and forth.
  std::thread updater([&svc, &stop] {
    int flip = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const char* dest = (flip++ % 2) ? "Rome" : "Milan";
      ASSERT_TRUE(
          svc.ApplyUpdate("F", 0, ir::Value::Int(136),
                          {ir::Value::Int(136),
                           ir::Value::Str(svc.interner().Intern(dest))})
              .ok());
      std::this_thread::yield();
    }
  });

  std::vector<std::vector<Ticket>> per_client(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&svc, &per_client, c] {
      for (int i = 0; i < kRounds; ++i) {
        std::string rel = "W" + std::to_string(c) + "_" + std::to_string(i);
        std::string dest = "City" + std::to_string(c) + "_" +
                           std::to_string(i);
        // Submit FIRST, write SECOND: the pair can only answer once its
        // row lands, so answering proves a write-path wake-up (or the
        // per-submit refresh) delivered it.
        auto a = svc.SubmitAsync("{" + rel + "(B, x)} " + rel +
                                 "(A, x) :- F(x, " + dest + ")");
        auto b = svc.SubmitAsync("{" + rel + "(A, y)} " + rel +
                                 "(B, y) :- F(y, " + dest + ")");
        ASSERT_TRUE(a.ok() && b.ok());
        ASSERT_TRUE(svc.ApplyWrite(
                           "F", {ir::Value::Int(60000 + c * 1000 + i),
                                 ir::Value::Str(
                                     svc.interner().Intern(dest))})
                        .ok());
        per_client[c].push_back(*a);
        per_client[c].push_back(*b);
      }
    });
  }
  for (auto& c : clients) c.join();
  // Every pair must resolve from the writes alone — wake-ups are the only
  // mechanism in play (incremental mode, no ticks): wait BEFORE draining.
  for (const auto& tickets : per_client) {
    for (const Ticket& t : tickets) {
      ASSERT_TRUE(t.WaitFor(std::chrono::milliseconds(30000)));
      EXPECT_EQ(t.outcome().state, ServiceOutcome::State::kAnswered)
          << t.outcome().status.ToString();
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  deleter.join();
  updater.join();
  ASSERT_TRUE(svc.Drain());
  // Liveness + TSan are the point here; whether a given pair was answered
  // by a wake-up or by the per-submit snapshot refresh (the write can land
  // before the pair is even processed) is a race both sides of which are
  // correct, so no exact wake-up count is asserted.
  ServiceMetrics m = svc.Metrics();
  EXPECT_EQ(m.pending, 0u);
}

// ------------------------------------------------ computed retry-after --

TEST(RetryAfterHintTest, ComputesFromDepthAndRate) {
  EXPECT_EQ(RetryAfterMsHint(100, 1000.0), 100u);  // 100 ops at 1k ops/s
  EXPECT_EQ(RetryAfterMsHint(1, 1e6), 1u);         // floor of 1ms
  EXPECT_EQ(RetryAfterMsHint(3, 2000.0), 2u);      // ceil(1.5ms)
  EXPECT_EQ(RetryAfterMsHint(0, 1000.0), 0u);      // empty queue: no hint
  EXPECT_EQ(RetryAfterMsHint(5, 0.0), 0u);         // unknown rate: no hint
}

TEST(RetryAfterHintTest, RejectionCarriesConcreteRetryAfter) {
  ServiceOptions o = Opts(1);
  o.max_queue_depth = 1;
  CoordinationService svc(o);
  // Warm the drain-rate estimate: flush ops are control traffic (exempt
  // from admission) and drain through the same op loop the rate observes.
  for (int i = 0; i < 5000 && svc.Metrics().shards[0].drain_ops_per_sec <= 0;
       ++i) {
    svc.FlushAll();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(svc.Metrics().shards[0].drain_ops_per_sec, 0.0);

  // Park the shard thread inside a resolution callback so the op queue
  // backs up behind it.
  std::promise<void> entered;
  auto release = std::make_shared<std::promise<void>>();
  std::shared_future<void> gate = release->get_future().share();
  SubmitOptions sopts;
  sopts.callback = [&entered, gate](TicketId, const ServiceOutcome&) {
    entered.set_value();
    gate.wait();
  };
  auto blocker =
      svc.Submit(client::Query::Ir("{Rb(A, x)} Rb(B, x) :- F(x, Rome)"),
                 sopts);
  ASSERT_TRUE(blocker.ok());
  ASSERT_TRUE(svc.Cancel(*blocker).ok());
  entered.get_future().wait();

  auto q1 = svc.SubmitAsync("{Rc(A, x)} Rc(B, x) :- F(x, Rome)");
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  auto q2 = svc.SubmitAsync("{Rd(A, y)} Rd(B, y) :- F(y, Rome)");
  ASSERT_FALSE(q2.ok());
  EXPECT_EQ(q2.status().code(), StatusCode::kResourceExhausted);
  // The hint is concrete: "retry after ~<N>ms", computed from the live
  // queue depth and the shard's recent drain rate.
  EXPECT_NE(q2.status().message().find("retry after ~"), std::string::npos)
      << q2.status().ToString();
  EXPECT_NE(q2.status().message().find("ms"), std::string::npos);

  release->set_value();
  ASSERT_TRUE(svc.Drain());
}

}  // namespace
}  // namespace eq::service
