// Two-node loopback cluster tests: the acceptance suite for the
// multi-node coordination layer. Two ClusterNodes in one process talk
// over real TCP sockets on 127.0.0.1; the tests drive them exclusively
// through client::Session bound to the abstract CoordinationInterface —
// the same client code that runs against a single-node service.
//
// Covered: cross-node entangled-pair coordination, write-triggered
// wake-up of a remote pending query via snapshot delta replication,
// backend-agnostic Session code, cross-node group-merge migration,
// peer-death -> kUnavailable (never a hang), handshake catalog
// verification, and garbage-on-the-port robustness.

#include "db/database.h"
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "client/session.h"
#include "cluster/node.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/service.h"

namespace eq::cluster {
namespace {

using client::Query;
using client::Session;
using service::ServiceOutcome;
using service::Ticket;

constexpr auto kWait = std::chrono::milliseconds(10000);

// Figure 1 (a), with the full table names the SQL dialect resolves
// against. Both nodes MUST run the identical bootstrap (same tables, same
// insertion order) — the interner-prefix handshake enforces it.
void FlightBootstrap(ir::QueryContext* ctx, db::Database* db) {
  ASSERT_TRUE(db->CreateTable("Flights", {{"fno", ir::ValueType::kInt},
                                          {"dest", ir::ValueType::kString}})
                  .ok());
  ASSERT_TRUE(db->CreateTable("Airlines",
                              {{"fno", ir::ValueType::kInt},
                               {"airline", ir::ValueType::kString}})
                  .ok());
  auto S = [&](const char* s) { return ir::Value::Str(ctx->Intern(s)); };
  ASSERT_TRUE(db->Insert("Flights", {ir::Value::Int(122), S("Paris")}).ok());
  ASSERT_TRUE(db->Insert("Flights", {ir::Value::Int(123), S("Paris")}).ok());
  ASSERT_TRUE(db->Insert("Flights", {ir::Value::Int(134), S("Paris")}).ok());
  ASSERT_TRUE(db->Insert("Flights", {ir::Value::Int(136), S("Rome")}).ok());
  ASSERT_TRUE(db->Insert("Airlines", {ir::Value::Int(122), S("United")}).ok());
  ASSERT_TRUE(db->Insert("Airlines", {ir::Value::Int(136), S("Alitalia")}).ok());
}

service::ServiceOptions LocalOpts() {
  service::ServiceOptions o;
  o.num_shards = 2;
  o.mode = engine::EvalMode::kIncremental;
  o.max_batch = 16;
  o.max_delay_ticks = 1;
  o.bootstrap = FlightBootstrap;
  return o;
}

uint16_t PickFreePort() {
  auto l = net::Listener::Bind("127.0.0.1", 0);
  EXPECT_TRUE(l.ok());
  uint16_t port = l->port();
  // Closed on scope exit; the port stays free long enough for the node to
  // rebind it (SO_REUSEADDR).
  return port;
}

ClusterOptions NodeOpts(uint32_t self, uint16_t self_port,
                        uint32_t peer, uint16_t peer_port) {
  ClusterOptions o;
  o.node_id = self;
  o.listen_port = self_port;
  o.peers = {{peer, "127.0.0.1", peer_port}};
  o.storage_owner = 0;
  o.connect_timeout_ms = 1000;
  o.io_timeout_ms = 3000;
  o.service = LocalOpts();
  return o;
}

/// A canonical 2-node loopback cluster (node 0 = storage owner).
struct TwoNodes {
  std::unique_ptr<ClusterNode> a;  // node 0
  std::unique_ptr<ClusterNode> b;  // node 1

  TwoNodes() {
    uint16_t pa = PickFreePort();
    uint16_t pb = PickFreePort();
    auto ra = ClusterNode::Start(NodeOpts(0, pa, 1, pb));
    auto rb = ClusterNode::Start(NodeOpts(1, pb, 0, pa));
    EXPECT_TRUE(ra.ok()) << ra.status().ToString();
    EXPECT_TRUE(rb.ok()) << rb.status().ToString();
    if (ra.ok()) a = std::move(ra.value());
    if (rb.ok()) b = std::move(rb.value());
  }
};

/// First relation name with the given prefix owned by `want` — both nodes
/// compute the same deterministic owner, so tests can pin a group to a
/// chosen node without depending on hash internals.
std::string RelationOwnedBy(ClusterService& svc, uint32_t want,
                            const std::string& prefix) {
  for (int i = 0; i < 64; ++i) {
    std::string rel = prefix + std::to_string(i);
    if (svc.OwnerOf({rel}) == want) return rel;
  }
  ADD_FAILURE() << "no relation with prefix " << prefix
                << " hashes to node " << want;
  return prefix + "unreachable";
}

std::pair<std::string, std::string> PairFor(const std::string& rel,
                                            const std::string& dest) {
  return {"{" + rel + "(Jerry, x)} " + rel + "(Kramer, x) :- Flights(x, " +
              dest + ")",
          "{" + rel + "(Kramer, y)} " + rel + "(Jerry, y) :- Flights(y, " +
              dest + ")"};
}

// ------------------------------------------------------- coordination --

TEST(ClusterTest, EntangledPairResolvesAcrossNodes) {
  TwoNodes cluster;
  ASSERT_TRUE(cluster.a && cluster.b);
  Session on_a(&cluster.a->service());
  Session on_b(&cluster.b->service());

  // Whichever node owns the group, exactly one side submits remotely.
  std::string rel = RelationOwnedBy(cluster.a->service(), 1, "R");
  auto [kramer, jerry] = PairFor(rel, "Paris");

  service::SubmitOptions sopts;
  sopts.preference = client::PreferenceSpec::MaximizeArg(1);
  auto tk = on_a.SubmitIr(kramer, sopts);
  auto tj = on_b.SubmitIr(jerry, sopts);
  ASSERT_TRUE(tk.ok()) << tk.status().ToString();
  ASSERT_TRUE(tj.ok()) << tj.status().ToString();

  ASSERT_TRUE(tk->WaitFor(kWait));
  ASSERT_TRUE(tj->WaitFor(kWait));
  ASSERT_EQ(tk->outcome().state, ServiceOutcome::State::kAnswered)
      << tk->outcome().status.ToString();
  ASSERT_EQ(tj->outcome().state, ServiceOutcome::State::kAnswered)
      << tj->outcome().status.ToString();

  // Consistent resolution: both halves see the same coordinated flight
  // (preference pins it to the max Paris flight, 134).
  ASSERT_FALSE(tk->outcome().tuples.empty());
  ASSERT_FALSE(tj->outcome().tuples.empty());
  EXPECT_NE(tk->outcome().tuples[0].find("134"), std::string::npos)
      << tk->outcome().tuples[0];
  EXPECT_NE(tj->outcome().tuples[0].find("134"), std::string::npos)
      << tj->outcome().tuples[0];
}

TEST(ClusterTest, WriteOnStorageOwnerWakesRemotePendingQueryViaDelta) {
  TwoNodes cluster;
  ASSERT_TRUE(cluster.a && cluster.b);
  Session on_a(&cluster.a->service());
  Session on_b(&cluster.b->service());

  // The pending pair must live on node 1 (NOT the storage owner) so
  // resolution can only come from a shipped version delta.
  std::string rel = RelationOwnedBy(cluster.a->service(), 1, "W");
  auto [kramer, jerry] = PairFor(rel, "Berlin");  // no Berlin flights yet

  auto tk = on_a.SubmitIr(kramer);
  auto tj = on_b.SubmitIr(jerry);
  ASSERT_TRUE(tk.ok()) << tk.status().ToString();
  ASSERT_TRUE(tj.ok()) << tj.status().ToString();
  EXPECT_FALSE(tk->WaitFor(std::chrono::milliseconds(200)));

  // Write through node 1's session: forwarded to the storage owner
  // (node 0), applied there, and the touched Flights table ships back to
  // node 1 as a delta — which wakes the pending pair.
  auto rows = on_b.ExecuteWrite("INSERT INTO Flights VALUES (200, 'Berlin')");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows.value(), 1u);

  ASSERT_TRUE(tk->WaitFor(kWait));
  ASSERT_TRUE(tj->WaitFor(kWait));
  ASSERT_EQ(tk->outcome().state, ServiceOutcome::State::kAnswered)
      << tk->outcome().status.ToString();
  ASSERT_EQ(tj->outcome().state, ServiceOutcome::State::kAnswered)
      << tj->outcome().status.ToString();
  ASSERT_FALSE(tk->outcome().tuples.empty());
  EXPECT_NE(tk->outcome().tuples[0].find("200"), std::string::npos)
      << tk->outcome().tuples[0];
}

/// The backend-agnostic client: byte-for-byte identical Session code,
/// handed either a single-node service or a cluster node.
void RunKramerJerry(service::CoordinationInterface* svc,
                    const std::string& rel) {
  Session session(svc);
  auto [kramer, jerry] = PairFor(rel, "Paris");
  auto tk = session.SubmitIr(kramer);
  auto tj = session.SubmitIr(jerry);
  ASSERT_TRUE(tk.ok()) << tk.status().ToString();
  ASSERT_TRUE(tj.ok()) << tj.status().ToString();
  ASSERT_TRUE(tk->WaitFor(kWait));
  ASSERT_TRUE(tj->WaitFor(kWait));
  EXPECT_EQ(tk->outcome().state, ServiceOutcome::State::kAnswered)
      << tk->outcome().status.ToString();
  EXPECT_EQ(tj->outcome().state, ServiceOutcome::State::kAnswered)
      << tj->outcome().status.ToString();
}

TEST(ClusterTest, SessionCodeIsBackendAgnostic) {
  service::CoordinationService single(LocalOpts());
  RunKramerJerry(&single, "Solo");

  TwoNodes cluster;
  ASSERT_TRUE(cluster.a && cluster.b);
  // Same client function; the relation is owned by the OTHER node, so the
  // cluster backend transparently forwards both halves over the wire.
  RunKramerJerry(&cluster.a->service(),
                 RelationOwnedBy(cluster.a->service(), 1, "S"));
}

TEST(ClusterTest, CrossNodeGroupMergeMigratesPendingQuery) {
  TwoNodes cluster;
  ASSERT_TRUE(cluster.a && cluster.b);
  Session on_a(&cluster.a->service());
  Session on_b(&cluster.b->service());

  // rp: owned by node 0. rm: owned by node 1 AND lexicographically
  // smaller, so the merged group {rm, rp} moves to node 1 and node 0 must
  // extract + re-forward its pending query.
  std::string rp = RelationOwnedBy(cluster.a->service(), 0, "Pa");
  std::string rm = RelationOwnedBy(cluster.a->service(), 1, "Ma");
  ASSERT_LT(rm, rp);

  // q1 runs locally on node 0 and waits for a partner.
  auto t1 = on_a.SubmitIr("{" + rp + "(Bob, x)} " + rp +
                          "(Alice, x) :- Flights(x, Paris)");
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();
  EXPECT_FALSE(t1->WaitFor(std::chrono::milliseconds(200)));

  // q2 waits under rm on node 1.
  auto t2 = on_b.SubmitIr("{" + rm + "(Carol, y)} " + rm +
                          "(Dan, y) :- Flights(y, Paris)");
  ASSERT_TRUE(t2.ok()) << t2.status().ToString();

  // The bridge entangles {rm, rp}: submitting it on node 0 re-routes the
  // merged group to node 1, displacing node 0 — which must extract q1 and
  // re-forward it so the three-way cycle coordinates on node 1.
  auto t3 = on_a.SubmitIr("{" + rp + "(Alice, z), " + rm + "(Dan, z)} " +
                          rp + "(Bob, z), " + rm +
                          "(Carol, z) :- Flights(z, Paris)");
  ASSERT_TRUE(t3.ok()) << t3.status().ToString();

  ASSERT_TRUE(t1->WaitFor(kWait));
  ASSERT_TRUE(t2->WaitFor(kWait));
  ASSERT_TRUE(t3->WaitFor(kWait));
  EXPECT_EQ(t1->outcome().state, ServiceOutcome::State::kAnswered)
      << t1->outcome().status.ToString();
  EXPECT_EQ(t2->outcome().state, ServiceOutcome::State::kAnswered)
      << t2->outcome().status.ToString();
  EXPECT_EQ(t3->outcome().state, ServiceOutcome::State::kAnswered)
      << t3->outcome().status.ToString();
}

// ------------------------------------------------------------ failure --

TEST(ClusterTest, DeadPeerYieldsUnavailableNotHang) {
  // Node 0 alone; its configured peer address has nothing listening.
  uint16_t pa = PickFreePort();
  uint16_t dead = PickFreePort();
  ClusterOptions opts = NodeOpts(0, pa, 1, dead);
  opts.storage_owner = 1;  // writes must cross to the dead node too
  auto node = ClusterNode::Start(opts);
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  Session session(&node.value()->service());

  std::string rel = RelationOwnedBy(node.value()->service(), 1, "D");
  auto t = session.SubmitIr(PairFor(rel, "Paris").first);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_TRUE(t->WaitFor(kWait)) << "submit to dead peer hung";
  EXPECT_EQ(t->outcome().state, ServiceOutcome::State::kFailed);
  EXPECT_EQ(t->outcome().status.code(), StatusCode::kUnavailable)
      << t->outcome().status.ToString();

  auto w = session.ExecuteWrite("INSERT INTO Flights VALUES (9, 'Oslo')");
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), StatusCode::kUnavailable);
}

TEST(ClusterTest, KillingPeerMidFlightFailsPendingTicketUnavailable) {
  TwoNodes cluster;
  ASSERT_TRUE(cluster.a && cluster.b);
  Session on_a(&cluster.a->service());

  // Half a pair, owned by node 1: forwarded there and parked pending.
  std::string rel = RelationOwnedBy(cluster.a->service(), 1, "K");
  auto t = on_a.SubmitIr(PairFor(rel, "Paris").first);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_FALSE(t->WaitFor(std::chrono::milliseconds(200)));

  // Kill the peer mid-flight: node 0's proxy ticket must resolve
  // kUnavailable within the configured timeouts — never hang.
  auto start = std::chrono::steady_clock::now();
  cluster.b->Stop();
  ASSERT_TRUE(t->WaitFor(kWait)) << "ticket hung after peer death";
  EXPECT_EQ(t->outcome().state, ServiceOutcome::State::kFailed);
  EXPECT_EQ(t->outcome().status.code(), StatusCode::kUnavailable)
      << t->outcome().status.ToString();
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(8));
}

TEST(ClusterTest, CancelReachesForwardedQuery) {
  TwoNodes cluster;
  ASSERT_TRUE(cluster.a && cluster.b);
  Session on_a(&cluster.a->service());

  std::string rel = RelationOwnedBy(cluster.a->service(), 1, "C");
  auto t = on_a.SubmitIr(PairFor(rel, "Paris").first);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_FALSE(t->WaitFor(std::chrono::milliseconds(200)));

  EXPECT_TRUE(on_a.Cancel(t.value()).ok());
  ASSERT_TRUE(t->WaitFor(kWait)) << "cancelled ticket never resolved";
  EXPECT_EQ(t->outcome().state, ServiceOutcome::State::kFailed);
  EXPECT_EQ(t->outcome().status.code(), StatusCode::kCancelled)
      << t->outcome().status.ToString();
}

// -------------------------------------------------------- replication --

TEST(ClusterTest, FollowerRejectsGappedDeltaAndIgnoresReplays) {
  // A follower node; the configured storage owner (node 1) is not
  // running — deltas are hand-crafted and fed straight to the handler,
  // exactly what a connection thread does with a decoded kDelta frame.
  ClusterOptions opts = NodeOpts(0, PickFreePort(), 1, PickFreePort());
  opts.storage_owner = 1;
  auto node = ClusterNode::Start(opts);
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  ClusterService& svc = node.value()->service();

  // The follower's applied version for an origin is exactly what its
  // HelloAck would report back to a reconnecting owner.
  auto applied_version = [&](uint32_t origin) {
    StringInterner empty;
    net::HelloMsg hello;
    hello.node_id = origin;
    hello.sym_hwm = 0;
    hello.sym_prefix_hash = net::InternerPrefixHash(empty, 0);
    return svc.HandleHello(hello).applied_db_version;
  };

  auto delta = [&](uint64_t from, uint64_t to, int fno,
                   const std::string& dest) {
    net::DeltaMsg m;
    m.origin_node = 1;
    m.from_version = from;
    m.to_version = to;
    net::DeltaMsg::TableRows t;
    t.table = "Flights";
    t.arity = 2;
    constexpr uint32_t kOwnerSym = 7777;  // above any shared prefix
    t.cells = {ir::Value::Int(fno), ir::Value::Str(kOwnerSym)};
    m.tables.push_back(std::move(t));
    m.dict.emplace_back(kOwnerSym, dest);
    return m;
  };

  // Contiguous from the initial state (applied = 0): accepted.
  EXPECT_TRUE(svc.HandleDelta(delta(0, 3, 200, "Berlin")).ok());
  EXPECT_EQ(applied_version(1), 3u);

  // Replayed history (an owner re-shipping after a resync race):
  // idempotently ignored, applied version unchanged.
  EXPECT_TRUE(svc.HandleDelta(delta(0, 3, 201, "Oslo")).ok());
  EXPECT_TRUE(svc.HandleDelta(delta(1, 2, 202, "Pisa")).ok());
  EXPECT_EQ(applied_version(1), 3u);

  // Gap (builds on version 5, only 3 applied): rejected so the serving
  // thread drops the connection and the owner resyncs via handshake —
  // applying it would silently skip tables touched in (3, 5].
  Status gap = svc.HandleDelta(delta(5, 6, 203, "Nice"));
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.code(), StatusCode::kUnavailable) << gap.ToString();
  EXPECT_EQ(applied_version(1), 3u);

  // Overlapping re-ship after a resync (builds on 2 <= applied 3, a
  // superset of what we miss): accepted, advances to 6.
  EXPECT_TRUE(svc.HandleDelta(delta(2, 6, 204, "Rome")).ok());
  EXPECT_EQ(applied_version(1), 6u);
}

TEST(ClusterTest, StartRejectsNodeIdsThatOverflowTheProxyTag) {
  // (node_id + 1) << 48 with node_id 65535 shifts the proxy-ticket tag
  // out of the id entirely — ids would collide with local counter ids.
  auto self = ClusterNode::Start(NodeOpts(65535, 0, 1, PickFreePort()));
  ASSERT_FALSE(self.ok());
  EXPECT_EQ(self.status().code(), StatusCode::kInvalidArgument);

  auto peer = ClusterNode::Start(NodeOpts(0, 0, 70000, PickFreePort()));
  ASSERT_FALSE(peer.ok());
  EXPECT_EQ(peer.status().code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------- protocol --

TEST(ClusterTest, HandshakeRefusesMismatchedCatalog) {
  TwoNodes cluster;
  ASSERT_TRUE(cluster.a && cluster.b);

  // Speak the protocol directly with a hash that cannot match node 0's
  // bootstrap prefix: the node must answer with a refusal ack, not accept
  // deltas from a divergent catalog.
  auto sock = net::Socket::Connect("127.0.0.1", cluster.a->listen_port(), 2000);
  ASSERT_TRUE(sock.ok()) << sock.status().ToString();
  net::HelloMsg hello;
  hello.node_id = 9;
  hello.sym_hwm = 1;  // below the node's hwm, so the node verifies it
  hello.sym_prefix_hash = 0xdeadbeef;
  ASSERT_TRUE(net::SendFrame(sock.value(), net::FrameType::kHello,
                             net::Encode(hello), 2000)
                  .ok());
  auto reply = net::RecvFrame(sock.value(), 3000, 3000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, net::FrameType::kHelloAck);
  auto ack = net::DecodeHelloAck(reply->payload);
  ASSERT_TRUE(ack.ok());
  EXPECT_FALSE(ack->ok);
  EXPECT_NE(ack->error.find("interner prefix mismatch"), std::string::npos)
      << ack->error;
}

TEST(ClusterTest, GarbageOnThePortDoesNotDisturbTheCluster) {
  TwoNodes cluster;
  ASSERT_TRUE(cluster.a && cluster.b);

  // A client that never says Hello, one that sends a corrupt frame type,
  // and one that sends a valid type with a garbage payload: the node hangs
  // up on each without crashing.
  {
    auto s = net::Socket::Connect("127.0.0.1", cluster.a->listen_port(), 2000);
    ASSERT_TRUE(s.ok());
    const char junk[] = {(char)0xff, (char)0xfe, 0x01, 0x02, 0x03, 0x04};
    (void)s.value().SendAll(junk, sizeof(junk), 1000);
  }
  {
    auto s = net::Socket::Connect("127.0.0.1", cluster.a->listen_port(), 2000);
    ASSERT_TRUE(s.ok());
    // Valid Hello first (an empty interner prefix always verifies), then
    // a truncated Submit payload.
    StringInterner empty;
    net::HelloMsg hello;
    hello.node_id = 9;
    hello.sym_hwm = 0;
    hello.sym_prefix_hash = net::InternerPrefixHash(empty, 0);
    ASSERT_TRUE(net::SendFrame(s.value(), net::FrameType::kHello,
                               net::Encode(hello), 2000)
                    .ok());
    auto ackf = net::RecvFrame(s.value(), 3000, 3000);
    ASSERT_TRUE(ackf.ok());
    ASSERT_TRUE(net::SendFrame(s.value(), net::FrameType::kSubmit,
                               "\x01\x02\x03", 2000)
                    .ok());
    // The node closes the connection on the corrupt payload.
    auto next = net::RecvFrame(s.value(), 5000, 5000);
    EXPECT_FALSE(next.ok());
  }

  // The cluster still coordinates normally afterwards.
  Session on_a(&cluster.a->service());
  Session on_b(&cluster.b->service());
  std::string rel = RelationOwnedBy(cluster.a->service(), 1, "G");
  auto [kramer, jerry] = PairFor(rel, "Paris");
  auto tk = on_a.SubmitIr(kramer);
  auto tj = on_b.SubmitIr(jerry);
  ASSERT_TRUE(tk.ok() && tj.ok());
  ASSERT_TRUE(tk->WaitFor(kWait));
  ASSERT_TRUE(tj->WaitFor(kWait));
  EXPECT_EQ(tk->outcome().state, ServiceOutcome::State::kAnswered)
      << tk->outcome().status.ToString();
  EXPECT_EQ(tj->outcome().state, ServiceOutcome::State::kAnswered)
      << tj->outcome().status.ToString();
}

}  // namespace
}  // namespace eq::cluster
