#include <gtest/gtest.h>
#include "db/database.h"

#include <set>

#include "core/combiner.h"
#include "core/matcher.h"
#include "core/partitioner.h"
#include "core/unifiability_graph.h"
#include "ir/parser.h"

namespace eq::core {
namespace {

using ir::GroundAtom;
using ir::QueryContext;
using ir::QueryId;
using ir::QuerySet;
using ir::Value;
using ir::ValueType;

class CombinerTest : public ::testing::Test {
 protected:
  void Load(const std::string& program) {
    ir::Parser parser(&ctx_);
    auto r = parser.ParseProgram(program);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    qs_ = std::move(r).value();
    graph_ = std::make_unique<UnifiabilityGraph>(&qs_);
    ASSERT_TRUE(graph_->Build().ok());
  }

  std::vector<QueryId> MatchAll() {
    Matcher matcher(graph_.get());
    std::vector<QueryId> all(qs_.queries.size());
    for (QueryId i = 0; i < all.size(); ++i) all[i] = i;
    return matcher.MatchComponent(all);
  }

  Value S(const char* s) { return Value::Str(ctx_.Intern(s)); }

  QueryContext ctx_;
  QuerySet qs_;
  std::unique_ptr<UnifiabilityGraph> graph_;
};

// §4.2's worked example: the combined query must simplify to
//   T(1) ∧ R(x1) ∧ S(x2)  ⊃  D1(x1, x2, 1) ∧ D2(x1) ∧ D3(1, x2).
TEST_F(CombinerTest, RunningExampleCombinedQueryIsSimplified) {
  Load(
      "{R(x1), S(x2)} T(x3) :- D1(x1, x2, x3);"
      "{T(1)} R(y1) :- D2(y1);"
      "{T(z1)} S(z2) :- D3(z1, z2)");
  auto survivors = MatchAll();
  ASSERT_EQ(survivors.size(), 3u);

  Combiner combiner(&qs_);
  auto cq = combiner.Combine(*graph_, survivors);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();

  // Global unifier: {{x1, y1}, {x2, z2}, {x3, z1, 1}}.
  EXPECT_EQ(cq->global.ToString(ctx_), "{{x1, y1}, {x2, z2}, {x3, z1, 1}}");

  // Heads: T(1) (x3 substituted), R(x1) (y1 → x1), S(x2) (z2 → x2).
  ASSERT_EQ(cq->head_templates.size(), 3u);
  EXPECT_EQ(cq->head_templates[0][0].ToString(ctx_), "T(1)");
  EXPECT_EQ(cq->head_templates[1][0].ToString(ctx_), "R(x1)");
  EXPECT_EQ(cq->head_templates[2][0].ToString(ctx_), "S(x2)");

  // Body: D1(x1, x2, 1), D2(x1), D3(1, x2).
  ASSERT_EQ(cq->body.atoms.size(), 3u);
  EXPECT_EQ(cq->body.atoms[0].ToString(ctx_), "D1(x1, x2, 1)");
  EXPECT_EQ(cq->body.atoms[1].ToString(ctx_), "D2(x1)");
  EXPECT_EQ(cq->body.atoms[2].ToString(ctx_), "D3(1, x2)");
}

TEST_F(CombinerTest, RunningExampleEvaluates) {
  Load(
      "{R(x1), S(x2)} T(x3) :- D1(x1, x2, x3);"
      "{T(1)} R(y1) :- D2(y1);"
      "{T(z1)} S(z2) :- D3(z1, z2)");
  auto survivors = MatchAll();
  Combiner combiner(&qs_);
  auto cq = combiner.Combine(*graph_, survivors);
  ASSERT_TRUE(cq.ok());

  db::Database db(&ctx_.interner());
  ASSERT_TRUE(db.CreateTable("D1", {{"a", ValueType::kInt},
                                    {"b", ValueType::kInt},
                                    {"c", ValueType::kInt}})
                  .ok());
  ASSERT_TRUE(db.CreateTable("D2", {{"a", ValueType::kInt}}).ok());
  ASSERT_TRUE(
      db.CreateTable("D3", {{"a", ValueType::kInt}, {"b", ValueType::kInt}})
          .ok());
  ASSERT_TRUE(
      db.Insert("D1", {Value::Int(10), Value::Int(20), Value::Int(1)}).ok());
  ASSERT_TRUE(db.Insert("D2", {Value::Int(10)}).ok());
  ASSERT_TRUE(db.Insert("D3", {Value::Int(1), Value::Int(20)}).ok());

  auto answers = combiner.Evaluate(*cq, &db);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->size(), 1u);
  const CoordinatedAnswer& a = (*answers)[0];
  ASSERT_EQ(a.answers.size(), 3u);
  EXPECT_EQ(a.answers[0][0].ToString(ctx_.interner()), "T(1)");
  EXPECT_EQ(a.answers[1][0].ToString(ctx_.interner()), "R(10)");
  EXPECT_EQ(a.answers[2][0].ToString(ctx_.interner()), "S(20)");
}

TEST_F(CombinerTest, NoDataMeansNoAnswers) {
  Load(
      "{T(1)} R(y1) :- D2(y1);"
      "{R(w)} T(1) :- D2(w)");
  auto survivors = MatchAll();
  ASSERT_EQ(survivors.size(), 2u);
  Combiner combiner(&qs_);
  auto cq = combiner.Combine(*graph_, survivors);
  ASSERT_TRUE(cq.ok());
  db::Database db(&ctx_.interner());
  ASSERT_TRUE(db.CreateTable("D2", {{"a", ValueType::kInt}}).ok());
  auto answers = combiner.Evaluate(*cq, &db);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
}

// The introduction's Kramer & Jerry scenario over the Figure 1 database:
// the coordinated choice must be a United flight to Paris (122 or 123).
TEST_F(CombinerTest, KramerAndJerryEndToEnd) {
  Load(
      "kramer: {R(Jerry, x)} R(Kramer, x) :- F(x, Paris);"
      "jerry: {R(Kramer, y)} R(Jerry, y) :- F(y, Paris), A(y, United)");
  auto survivors = MatchAll();
  ASSERT_EQ(survivors.size(), 2u);

  Combiner combiner(&qs_);
  auto cq = combiner.Combine(*graph_, survivors);
  ASSERT_TRUE(cq.ok());
  // §3.2: the combined query asks for a United flight to Paris.
  ASSERT_EQ(cq->body.atoms.size(), 3u);  // F (Kramer), F, A (Jerry)

  db::Database db(&ctx_.interner());
  ASSERT_TRUE(db.CreateTable(
                    "F", {{"fno", ValueType::kInt}, {"dest", ValueType::kString}})
                  .ok());
  ASSERT_TRUE(db.CreateTable("A", {{"fno", ValueType::kInt},
                                   {"airline", ValueType::kString}})
                  .ok());
  ASSERT_TRUE(db.Insert("F", {Value::Int(122), S("Paris")}).ok());
  ASSERT_TRUE(db.Insert("F", {Value::Int(123), S("Paris")}).ok());
  ASSERT_TRUE(db.Insert("F", {Value::Int(134), S("Paris")}).ok());
  ASSERT_TRUE(db.Insert("F", {Value::Int(136), S("Rome")}).ok());
  ASSERT_TRUE(db.Insert("A", {Value::Int(122), S("United")}).ok());
  ASSERT_TRUE(db.Insert("A", {Value::Int(123), S("United")}).ok());
  ASSERT_TRUE(db.Insert("A", {Value::Int(134), S("Lufthansa")}).ok());
  ASSERT_TRUE(db.Insert("A", {Value::Int(136), S("Alitalia")}).ok());

  auto answers = combiner.Evaluate(*cq, &db);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  const CoordinatedAnswer& a = (*answers)[0];
  // Kramer's tuple and Jerry's tuple share a flight number ∈ {122, 123}.
  const GroundAtom& kramer = a.answers[0][0];
  const GroundAtom& jerry = a.answers[1][0];
  EXPECT_EQ(kramer.args[0], S("Kramer"));
  EXPECT_EQ(jerry.args[0], S("Jerry"));
  EXPECT_EQ(kramer.args[1], jerry.args[1]);
  int64_t fno = kramer.args[1].AsInt();
  EXPECT_TRUE(fno == 122 || fno == 123) << "got flight " << fno;
}

TEST_F(CombinerTest, ChooseKReturnsMultipleCoordinatedOutcomes) {
  Load(
      "kramer: {R(Jerry, x)} R(Kramer, x) :- F(x, Paris);"
      "jerry: {R(Kramer, y)} R(Jerry, y) :- F(y, Paris)");
  auto survivors = MatchAll();
  Combiner combiner(&qs_);
  auto cq = combiner.Combine(*graph_, survivors);
  ASSERT_TRUE(cq.ok());
  db::Database db(&ctx_.interner());
  ASSERT_TRUE(db.CreateTable(
                    "F", {{"fno", ValueType::kInt}, {"dest", ValueType::kString}})
                  .ok());
  ASSERT_TRUE(db.Insert("F", {Value::Int(122), S("Paris")}).ok());
  ASSERT_TRUE(db.Insert("F", {Value::Int(123), S("Paris")}).ok());
  auto answers = combiner.Evaluate(*cq, &db, /*k=*/2);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 2u);
  std::set<int64_t> flights;
  for (const auto& a : *answers) flights.insert(a.answers[0][0].args[1].AsInt());
  EXPECT_EQ(flights, (std::set<int64_t>{122, 123}));
}

TEST_F(CombinerTest, GlobalMguConflictIsUnsatisfiable) {
  // Two disconnected pairs whose unifiers are individually fine; force a
  // conflict by combining queries that were never matched together. This
  // guards the "evaluation fails for Q' and all queries are rejected" path.
  Load(
      "{K(a, 1)} K(a, 2) :- B(a);"    // q0: needs K(a,1)
      "{K(b, 2)} K(b, 1) :- B(b)");   // q1: needs K(b,2)
  // Edges: q0→q1 (K(a,2)~K(b,2): a~b) and q1→q0 (K(b,1)~K(a,1): a~b).
  // Initial unifiers are consistent; matching succeeds.
  auto survivors = MatchAll();
  ASSERT_EQ(survivors.size(), 2u);
  Combiner combiner(&qs_);
  auto cq = combiner.Combine(*graph_, survivors);
  EXPECT_TRUE(cq.ok());

  // Now inject an artificial conflict: bind q0's variable to one constant
  // and q1's (same-class) variable to another, then re-combine.
  ir::VarId a = qs_.queries[0].head[0].args[0].var();
  ir::VarId b = qs_.queries[1].head[0].args[0].var();
  ASSERT_TRUE(graph_->node(0).unifier.BindConst(a, Value::Int(7)));
  ASSERT_TRUE(graph_->node(1).unifier.BindConst(b, Value::Int(8)));
  auto bad = combiner.Combine(*graph_, survivors);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnsatisfiable);
}

TEST_F(CombinerTest, FiltersAreRewrittenIntoCombinedBody) {
  // q0 contributes Q(y), needs P(x), and insists x != y; q1 contributes
  // P(v), needs Q(w). Classes after matching: {x, v} and {y, w}.
  Load(
      "{P(x)} Q(y) :- B(x, y), x != y;"
      "{Q(w)} P(v) :- B(v, w)");
  auto survivors = MatchAll();
  ASSERT_EQ(survivors.size(), 2u);
  Combiner combiner(&qs_);
  auto cq = combiner.Combine(*graph_, survivors);
  ASSERT_TRUE(cq.ok());
  ASSERT_EQ(cq->body.filters.size(), 1u);

  db::Database db(&ctx_.interner());
  ASSERT_TRUE(
      db.CreateTable("B", {{"a", ValueType::kInt}, {"b", ValueType::kInt}})
          .ok());
  // B(5,5) would satisfy the joins but violates x != y.
  ASSERT_TRUE(db.Insert("B", {Value::Int(5), Value::Int(5)}).ok());
  auto none = combiner.Evaluate(*cq, &db);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  // B(5,6): x = 5, y = 6 satisfies both bodies and the filter.
  ASSERT_TRUE(db.Insert("B", {Value::Int(5), Value::Int(6)}).ok());
  auto some = combiner.Evaluate(*cq, &db);
  ASSERT_TRUE(some.ok());
  ASSERT_EQ(some->size(), 1u);
  EXPECT_EQ((*some)[0].answers[0][0].ToString(ctx_.interner()), "Q(6)");
  EXPECT_EQ((*some)[0].answers[1][0].ToString(ctx_.interner()), "P(5)");
}

}  // namespace
}  // namespace eq::core
