#include <gtest/gtest.h>
#include "db/database.h"

#include <chrono>
#include <set>
#include <unordered_set>

#include "core/matcher.h"
#include "core/partitioner.h"
#include "core/safety.h"
#include "core/unifiability_graph.h"
#include "engine/engine.h"
#include "service/service.h"
#include "workload/flight_workload.h"
#include "workload/kway_workload.h"
#include "workload/social_graph.h"

namespace eq::workload {
namespace {

using ir::QueryId;
using ir::QuerySet;

SocialGraphOptions SmallGraph(uint64_t seed = 7) {
  SocialGraphOptions opts;
  opts.num_users = 600;
  opts.num_airports = 8;
  opts.attach_edges = 6;
  opts.seed = seed;
  return opts;
}

// ------------------------------------------------------------ SocialGraph --

TEST(SocialGraphTest, GeneratesRequestedScale) {
  SocialGraph g = SocialGraph::Generate(SmallGraph());
  EXPECT_EQ(g.num_users(), 600u);
  EXPECT_EQ(g.num_airports(), 8u);
  EXPECT_GT(g.num_edges(), 600u * 3);  // ~m edges per node
  EXPECT_GT(g.AverageDegree(), 6.0);
}

TEST(SocialGraphTest, DeterministicForSeed) {
  SocialGraph a = SocialGraph::Generate(SmallGraph(5));
  SocialGraph b = SocialGraph::Generate(SmallGraph(5));
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (uint32_t u = 0; u < a.num_users(); ++u) {
    ASSERT_EQ(a.Friends(u), b.Friends(u));
    ASSERT_EQ(a.Hometown(u), b.Hometown(u));
  }
  SocialGraph c = SocialGraph::Generate(SmallGraph(6));
  bool any_diff = c.num_edges() != a.num_edges();
  for (uint32_t u = 0; !any_diff && u < a.num_users(); ++u) {
    any_diff = a.Friends(u) != c.Friends(u);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SocialGraphTest, FriendshipIsSymmetric) {
  SocialGraph g = SocialGraph::Generate(SmallGraph());
  for (uint32_t u = 0; u < g.num_users(); ++u) {
    for (uint32_t v : g.Friends(u)) {
      ASSERT_TRUE(g.AreFriends(v, u)) << u << " " << v;
      ASSERT_NE(u, v) << "self-loop";
    }
  }
}

TEST(SocialGraphTest, GraphIsClustered) {
  SocialGraph g = SocialGraph::Generate(SmallGraph());
  Rng rng(1);
  // Triangle closure should give a clustering coefficient far above an
  // Erdős–Rényi graph of the same density (~degree/n ≈ 0.02).
  EXPECT_GT(g.SampleClustering(&rng, 300), 0.05);
}

TEST(SocialGraphTest, HometownsAreCohesive) {
  SocialGraph g = SocialGraph::Generate(SmallGraph());
  Rng rng(2);
  // Paper: "as far as possible, each user has at least half of his or her
  // friends living in the same city".
  EXPECT_GT(g.HometownCohesion(&rng, 600), 0.5);
}

TEST(SocialGraphTest, SamplersProduceValidStructures) {
  SocialGraph g = SocialGraph::Generate(SmallGraph());
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    auto [u, v] = g.RandomFriendPair(&rng);
    EXPECT_TRUE(g.AreFriends(u, v));
  }
  int triangles = 0;
  for (int i = 0; i < 20; ++i) {
    auto tri = g.RandomTriangle(&rng);
    if (!tri) continue;
    ++triangles;
    auto [a, b, c] = *tri;
    EXPECT_TRUE(g.AreFriends(a, b));
    EXPECT_TRUE(g.AreFriends(b, c));
    EXPECT_TRUE(g.AreFriends(a, c));
  }
  EXPECT_GT(triangles, 0);
  auto clique = g.RandomClique(4, &rng);
  if (clique) {
    for (size_t i = 0; i < clique->size(); ++i) {
      for (size_t j = i + 1; j < clique->size(); ++j) {
        EXPECT_TRUE(g.AreFriends((*clique)[i], (*clique)[j]));
      }
    }
  }
}

TEST(SocialGraphTest, LargestCityIsLargeEnoughForStressTests) {
  SocialGraph g = SocialGraph::Generate(SmallGraph());
  auto cluster = g.UsersInLargestCity();
  EXPECT_GE(cluster.size(), g.num_users() / g.num_airports());
  for (size_t i = 1; i < cluster.size(); ++i) {
    EXPECT_EQ(g.Hometown(cluster[i]), g.Hometown(cluster[0]));
  }
}

TEST(SocialGraphTest, AirportNamesAreStable) {
  SocialGraph g = SocialGraph::Generate(SmallGraph());
  EXPECT_EQ(g.AirportName(0), "ITH");
  EXPECT_EQ(g.AirportName(3), "SBN");
  EXPECT_EQ(g.AirportName(7), "AP7");
}

// -------------------------------------------------------- FlightWorkload --

class FlightWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = SocialGraph::Generate(SmallGraph());
    workload_ = std::make_unique<FlightWorkload>(&graph_, &ctx_);
    db_ = std::make_unique<db::Database>(&ctx_.interner());
    ASSERT_TRUE(workload_->PopulateDatabase(db_.get()).ok());
  }

  /// Validates a generated batch as a QuerySet (fresh context arities).
  void ExpectValid(std::vector<ir::EntangledQuery> queries) {
    QuerySet qs;
    qs.queries = std::move(queries);
    qs.AssignIds();
    Status st = ir::ValidateQuerySet(qs, &ctx_);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  ir::QueryContext ctx_;
  SocialGraph graph_;
  std::unique_ptr<FlightWorkload> workload_;
  std::unique_ptr<db::Database> db_;
};

TEST_F(FlightWorkloadTest, DatabaseMatchesGraph) {
  const db::Table* user = db_->GetTable("User");
  const db::Table* friends = db_->GetTable("Friends");
  ASSERT_NE(user, nullptr);
  ASSERT_NE(friends, nullptr);
  EXPECT_EQ(user->row_count(), graph_.num_users());
  EXPECT_EQ(friends->row_count(), graph_.num_edges() * 2);
  EXPECT_TRUE(friends->HasIndex(0));
  EXPECT_TRUE(user->HasIndex(0));
}

TEST_F(FlightWorkloadTest, GeneratorsProduceValidQuerySets) {
  Rng rng(11);
  ExpectValid(workload_->TwoWayRandom(20, &rng));
  ExpectValid(workload_->TwoWayBestCase(20, &rng));
  ExpectValid(workload_->ThreeWay(10, &rng));
  ExpectValid(workload_->NoUnification(20, &rng));
  ExpectValid(workload_->UnsafeSet(10, &rng));
}

TEST_F(FlightWorkloadTest, TwoWayPairsHaveExpectedShape) {
  Rng rng(12);
  auto queries = workload_->TwoWayRandom(5, &rng);
  ASSERT_EQ(queries.size(), 10u);
  for (const auto& q : queries) {
    EXPECT_EQ(q.postconditions.size(), 1u);
    EXPECT_EQ(q.head.size(), 1u);
    EXPECT_EQ(q.body.size(), 3u);  // F(me,x), U(me,c), U(x,c)
    EXPECT_TRUE(q.head[0].IsGround());
    EXPECT_TRUE(q.postconditions[0].args[0].is_var());  // wildcard partner
  }
  auto best = workload_->TwoWayBestCase(5, &rng);
  for (const auto& q : best) {
    EXPECT_TRUE(q.postconditions[0].IsGround());  // named partner
  }
}

TEST_F(FlightWorkloadTest, NoUnificationBuildsEdgeFreeGraph) {
  Rng rng(13);
  QuerySet qs;
  qs.queries = workload_->NoUnification(50, &rng);
  qs.AssignIds();
  core::UnifiabilityGraph g(&qs);
  ASSERT_TRUE(g.Build().ok());
  EXPECT_EQ(g.live_edge_count(), 0u);
}

TEST_F(FlightWorkloadTest, ChainsUnifyWithoutCycles) {
  Rng rng(14);
  QuerySet qs;
  qs.queries = workload_->Chains(60, /*chain_len=*/6, &rng);
  qs.AssignIds();
  core::UnifiabilityGraph g(&qs);
  ASSERT_TRUE(g.Build().ok());
  EXPECT_GT(g.live_edge_count(), 0u);
  EXPECT_TRUE(g.safety_violations().empty());
  // No coordination ever completes: every component has an unanswerable
  // query, so batch matching leaves nothing.
  core::Matcher matcher(&g);
  std::vector<QueryId> all(qs.queries.size());
  for (QueryId i = 0; i < all.size(); ++i) all[i] = i;
  EXPECT_TRUE(matcher.MatchComponent(all).empty());
}

TEST_F(FlightWorkloadTest, MassiveClusterFormsOnePartition) {
  Rng rng(15);
  QuerySet qs;
  qs.queries = workload_->MassiveCluster(100, &rng);
  qs.AssignIds();
  core::UnifiabilityGraph g(&qs);
  ASSERT_TRUE(g.Build().ok());
  auto parts = core::Partitioner::Components(g);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), 100u);
}

TEST_F(FlightWorkloadTest, UnsafeSetIsRejectedAgainstResidents) {
  Rng rng(16);
  QuerySet qs;
  qs.queries = workload_->NoUnification(30, &rng);
  auto unsafe = workload_->UnsafeSet(10, &rng);
  for (auto& q : unsafe) qs.queries.push_back(std::move(q));
  qs.AssignIds();

  core::SafetyChecker checker(&qs);
  for (QueryId q = 0; q < 30; ++q) {
    ASSERT_TRUE(checker.Admit(q).ok()) << q;
  }
  for (QueryId q = 30; q < 40; ++q) {
    EXPECT_EQ(checker.Admit(q).code(), StatusCode::kUnsafe) << q;
  }
}

// End-to-end: generated pairs submitted through the engine coordinate
// exactly when the two users share a hometown (§5.3.1 semantics).
TEST_F(FlightWorkloadTest, TwoWayPairsCoordinateIffSameCity) {
  Rng rng(17);
  engine::CoordinationEngine engine(
      &ctx_, db_.get(), {.mode = engine::EvalMode::kIncremental});
  int answered_pairs = 0, tried = 0;
  for (int i = 0; i < 40; ++i) {
    auto pair = workload_->TwoWayBestCase(1, &rng);
    ASSERT_EQ(pair.size(), 2u);
    // Identify the two users from the head constants.
    auto a = engine.Submit(pair[0]);
    auto b = engine.Submit(pair[1]);
    if (!a.ok() || !b.ok()) continue;  // transient safety rejection
    ++tried;
    const auto& oa = engine.outcome(*a);
    const auto& ob = engine.outcome(*b);
    bool answered = oa.state == engine::QueryOutcome::State::kAnswered;
    if (answered) {
      ++answered_pairs;
      EXPECT_EQ(ob.state, engine::QueryOutcome::State::kAnswered);
      EXPECT_EQ(oa.tuples[0].args[1], ob.tuples[0].args[1]);
    }
  }
  // With cohesive hometowns, a healthy fraction of friend pairs share a
  // city; neither zero nor all.
  EXPECT_GT(answered_pairs, 0);
  EXPECT_GT(tried, 20);
}

TEST_F(FlightWorkloadTest, ThreeWayTrianglesCoordinate) {
  Rng rng(18);
  engine::CoordinationEngine engine(
      &ctx_, db_.get(), {.mode = engine::EvalMode::kIncremental});
  int answered = 0;
  for (int i = 0; i < 30 && answered == 0; ++i) {
    auto triple = workload_->ThreeWay(1, &rng);
    if (triple.size() != 3) continue;
    std::vector<QueryId> ids;
    bool all_ok = true;
    for (auto& q : triple) {
      auto r = engine.Submit(q);
      if (!r.ok()) {
        all_ok = false;
        break;
      }
      ids.push_back(*r);
    }
    if (!all_ok) continue;
    bool all_answered = true;
    for (QueryId id : ids) {
      all_answered &= engine.outcome(id).state ==
                      engine::QueryOutcome::State::kAnswered;
    }
    if (all_answered) ++answered;
  }
  EXPECT_GT(answered, 0) << "no triangle coordinated in 30 attempts";
}

TEST_F(FlightWorkloadTest, CliqueQueriesCarryWPostconditions) {
  Rng rng(19);
  auto queries = workload_->CliqueCoordination(5, /*w=*/2, &rng);
  EXPECT_EQ(queries.size() % 3, 0u);  // groups of w+1 = 3 queries
  for (const auto& q : queries) {
    EXPECT_EQ(q.postconditions.size(), 2u);
    EXPECT_EQ(q.body.size(), 1u + 2u * 2u);  // own U + per-partner F and U
  }
}

// ------------------------------------------------------------ KWayGroup --

TEST(KWayGroupTest, RingClosesOverAllKMembers) {
  for (int k : {2, 3, 4}) {
    KWayGroupSpec spec;
    spec.group_id = 9;
    spec.k = k;
    auto programs = MakeKWayGroupPrograms(spec);
    ASSERT_EQ(programs.size(), static_cast<size_t>(k));
    std::string rel = KWayGroupRelation(spec);
    EXPECT_EQ(rel, "G9");
    for (int i = 0; i < k; ++i) {
      const auto& p = programs[i];
      ASSERT_EQ(p.postconditions.size(), 1u);
      ASSERT_EQ(p.head.size(), 1u);
      ASSERT_EQ(p.body.size(), 1u);
      EXPECT_EQ(p.postconditions[0].relation, rel);
      EXPECT_EQ(p.head[0].relation, rel);
      EXPECT_EQ(p.body[0].relation, "F");
      // Member i demands a seat for member i+1 (mod k): the partner the
      // postcondition names is exactly the next member's head constant —
      // that is what makes the ring close only when all k are present.
      EXPECT_EQ(p.postconditions[0].args[0],
                programs[(i + 1) % k].head[0].args[0]);
      // Every atom shares the one variable, so unification forces all k
      // members onto the same x.
      EXPECT_EQ(p.head[0].args[1], p.body[0].args[0]);
      EXPECT_EQ(p.postconditions[0].args[1], p.head[0].args[1]);
    }
  }
}

TEST(KWayGroupTest, GenerationIsDeterministicAndGroupsAreDisjoint) {
  KWayGroupSpec spec;
  spec.group_id = 3;
  spec.k = 3;
  auto a = MakeKWayGroupPrograms(spec);
  auto b = MakeKWayGroupPrograms(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToIrText(), b[i].ToIrText());
  }
  // Distinct groups entangle distinct ANSWER relations, so they can never
  // cross-coordinate (and a router can spread them across shards).
  KWayGroupSpec other = spec;
  other.group_id = 4;
  EXPECT_NE(KWayGroupRelation(spec), KWayGroupRelation(other));
  EXPECT_NE(a[0].ToIrText(), MakeKWayGroupPrograms(other)[0].ToIrText());
}

TEST(KWayGroupTest, ProgramsInstantiateIntoValidQuerySets) {
  for (int k : {2, 3, 4}) {
    ir::QueryContext ctx;
    QuerySet qs;
    KWayGroupSpec spec;
    spec.k = k;
    for (const auto& p : MakeKWayGroupPrograms(spec)) {
      auto q = p.Instantiate(&ctx);
      ASSERT_TRUE(q.ok()) << q.status().ToString();
      qs.queries.push_back(std::move(q.value()));
    }
    qs.AssignIds();
    Status st = ir::ValidateQuerySet(qs, &ctx);
    ASSERT_TRUE(st.ok()) << st.ToString();
    core::UnifiabilityGraph g(&qs);
    ASSERT_TRUE(g.Build().ok());
    EXPECT_GT(g.live_edge_count(), 0u) << "k=" << k;
  }
}

TEST(KWayGroupTest, HotGroupPairsShareRelationButNamePrivatePartners) {
  auto [a0, b0] = MakeHotGroupPair(0, 5);
  auto [a1, b1] = MakeHotGroupPair(1, 5);
  ASSERT_TRUE(a0.program() && b0.program() && a1.program());
  // Same hot relation -> same routing fingerprint: every arrival on the
  // hot group lands on the same shard (the skew stressor).
  EXPECT_EQ(a0.program()->EntangledRelations(),
            a1.program()->EntangledRelations());
  // But partners are named, so arrival 0 only coordinates with its own
  // other half, never with arrival 1's.
  EXPECT_EQ(a0.program()->postconditions[0].args[0].text, "P0b");
  EXPECT_EQ(b0.program()->postconditions[0].args[0].text, "P0a");
  EXPECT_EQ(a1.program()->postconditions[0].args[0].text, "P1b");
}

// ---------------------------------------------------------- ZipfSampler --

TEST(ZipfSamplerTest, DeterministicForSeedAndInRange) {
  ZipfSampler z(64, 1.2);
  Rng r1(9), r2(9);
  for (int i = 0; i < 1000; ++i) {
    size_t a = z.Sample(&r1);
    EXPECT_EQ(a, z.Sample(&r2));
    EXPECT_LT(a, 64u);
  }
}

TEST(ZipfSamplerTest, ThetaZeroIsUniformHighThetaIsSkewed) {
  constexpr size_t kN = 16;
  constexpr int kDraws = 20000;
  auto rank0_mass = [](double theta) {
    ZipfSampler z(kN, theta);
    Rng rng(17);
    int hot = 0;
    for (int i = 0; i < kDraws; ++i) hot += z.Sample(&rng) == 0;
    return static_cast<double>(hot) / kDraws;
  };
  EXPECT_NEAR(rank0_mass(0.0), 1.0 / kN, 0.02);
  // Analytic rank-0 mass at theta=1.2, n=16 is ~0.37.
  EXPECT_GT(rank0_mass(1.2), 0.25);
}

// ------------------------------------------------------ PoissonArrivals --

TEST(PoissonArrivalsTest, ScheduleIsSortedDeterministicAndPaced) {
  Rng r1(21), r2(21);
  auto a = PoissonArrivalsMs(4000, 500.0, &r1);
  ASSERT_EQ(a.size(), 4000u);
  EXPECT_EQ(a, PoissonArrivalsMs(4000, 500.0, &r2));
  double prev = 0;
  for (double t : a) {
    ASSERT_GE(t, prev);
    prev = t;
  }
  // 500 arrivals/sec -> 2ms mean gap; 4000 exponential gaps average to
  // within ~6 sigma of it.
  EXPECT_NEAR(a.back() / 4000.0, 2.0, 0.2);
}

// --------------------------------------------------------- KWayService --

// The same shape of bootstrap bench_service's workload section runs: the
// body table F with Paris rows for the rings to unify on.
void KWayBootstrap(ir::QueryContext* ctx, db::Database* db) {
  ASSERT_TRUE(db->CreateTable("F", {{"fno", ir::ValueType::kInt},
                                    {"dest", ir::ValueType::kString}})
                  .ok());
  auto S = [&](const char* s) { return ir::Value::Str(ctx->Intern(s)); };
  ASSERT_TRUE(db->Insert("F", {ir::Value::Int(122), S("Paris")}).ok());
  ASSERT_TRUE(db->Insert("F", {ir::Value::Int(134), S("Paris")}).ok());
}

service::ServiceOptions KWayOpts() {
  service::ServiceOptions o;
  o.num_shards = 2;
  o.mode = engine::EvalMode::kIncremental;
  o.bootstrap = KWayBootstrap;
  return o;
}

/// Which Paris flight a rendered answer tuple committed to.
std::string FlightIn(const std::string& tuple) {
  if (tuple.find("122") != std::string::npos) return "122";
  if (tuple.find("134") != std::string::npos) return "134";
  return "?";
}

class KWayServiceTest : public ::testing::TestWithParam<int> {};

// All-or-nothing through the full service stack: k-1 members leave the
// postcondition ring open and nothing resolves; the closing member
// answers every ticket, all unified onto one flight.
TEST_P(KWayServiceTest, GroupResolvesAllOrNothing) {
  const int k = GetParam();
  service::CoordinationService svc(KWayOpts());
  KWayGroupSpec spec;
  spec.group_id = 42;
  spec.k = k;
  auto members = MakeKWayGroup(spec);
  ASSERT_EQ(members.size(), static_cast<size_t>(k));

  std::vector<service::Ticket> tickets;
  for (int i = 0; i + 1 < k; ++i) {
    auto t = svc.Submit(members[i]);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    tickets.push_back(std::move(t.value()));
  }
  for (auto& t : tickets) {
    EXPECT_FALSE(t.WaitFor(std::chrono::milliseconds(200)))
        << "group resolved with an open ring (k=" << k << ")";
  }

  auto last = svc.Submit(members[k - 1]);
  ASSERT_TRUE(last.ok()) << last.status().ToString();
  tickets.push_back(std::move(last.value()));

  std::string flight;
  for (auto& t : tickets) {
    ASSERT_TRUE(t.WaitFor(std::chrono::milliseconds(10000)));
    ASSERT_EQ(t.outcome().state, service::ServiceOutcome::State::kAnswered)
        << t.outcome().status.ToString();
    ASSERT_FALSE(t.outcome().tuples.empty());
    std::string f = FlightIn(t.outcome().tuples[0]);
    if (flight.empty()) flight = f;
    EXPECT_EQ(f, flight) << t.outcome().tuples[0];
  }
  EXPECT_NE(flight, "?");
}

INSTANTIATE_TEST_SUITE_P(K, KWayServiceTest, ::testing::Values(3, 4));

}  // namespace
}  // namespace eq::workload
