// Tests for the parallel prepare path: the pooled edge catalogs that
// translate/validate concurrently, the fingerprint-keyed prepared-plan
// cache in front of translation (hit equivalence, LRU eviction,
// schema-change invalidation), synchronous parse errors across all three
// dialects, and a multi-thread all-dialect stress run for the sanitizer
// legs.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "client/query.h"
#include "db/database.h"
#include "service/export.h"
#include "service/plan_cache.h"
#include "service/service.h"

namespace eq::service {
namespace {

using client::Query;
using client::QueryBuilder;
using client::Str;
using client::Var;

void FlightBootstrap(ir::QueryContext* ctx, db::Database* db) {
  ASSERT_TRUE(db->CreateTable("Flights", {{"fno", ir::ValueType::kInt},
                                          {"dest", ir::ValueType::kString}})
                  .ok());
  auto S = [&](const char* s) { return ir::Value::Str(ctx->Intern(s)); };
  ASSERT_TRUE(db->Insert("Flights", {ir::Value::Int(122), S("Paris")}).ok());
  ASSERT_TRUE(db->Insert("Flights", {ir::Value::Int(136), S("Rome")}).ok());
}

ServiceOptions Opts(uint32_t shards = 2) {
  ServiceOptions o;
  o.num_shards = shards;
  o.mode = engine::EvalMode::kIncremental;
  o.bootstrap = FlightBootstrap;
  return o;
}

std::string PairSql(const std::string& a, const std::string& b) {
  return "SELECT '" + a + "', fno INTO ANSWER Reservation " +
         "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') " +
         "AND ('" + b + "', fno) IN ANSWER Reservation CHOOSE 1";
}

std::string PairIr(const std::string& a, const std::string& b) {
  return "{Reservation(" + b + ", x)} Reservation(" + a +
         ", x) :- Flights(x, Paris)";
}

Query PairBuilder(const std::string& a, const std::string& b) {
  return QueryBuilder()
      .Postcondition("Reservation", {Str(b), Var("x")})
      .Head("Reservation", {Str(a), Var("x")})
      .Body("Flights", {Var("x"), Str("Paris")})
      .Build();
}

// ------------------------------------------------- text normalization ----

TEST(PlanCacheTest, NormalizeTextIsQuoteAware) {
  EXPECT_EQ(PlanCache::NormalizeText("  a   b \t c  "), "a b c");
  // Whitespace inside string literals is data, not formatting.
  EXPECT_EQ(PlanCache::NormalizeText("x  'a  b'  y"), "x 'a  b' y");
  EXPECT_EQ(PlanCache::NormalizeText("\"p  q\"  r"), "\"p  q\" r");
  // The other quote char inside a literal does not close it.
  EXPECT_EQ(PlanCache::NormalizeText("'a \" b'   c"), "'a \" b' c");
  EXPECT_NE(PlanCache::NormalizeText("SELECT 'a b'"),
            PlanCache::NormalizeText("SELECT 'a  b'"));
}

// ------------------------------------------------------ hit semantics ----

TEST(PlanCacheServiceTest, HitReturnsEquivalentCanonicalProgram) {
  CoordinationService svc(Opts());
  const std::string sql = PairSql("Kramer", "Jerry");
  auto cold = svc.Canonicalize(Query::Sql(sql));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  // Same shape, trivially reformatted: extra whitespace outside literals.
  auto hit = svc.Canonicalize(Query::Sql("  " + sql + "   "));
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_EQ(cold->ToIrText(), hit->ToIrText());
  EXPECT_EQ(cold->EntangledRelations(), hit->EntangledRelations());
  ServiceMetrics m = svc.Metrics();
  EXPECT_GE(m.prepare_cache_hits, 1u);
  EXPECT_GE(m.prepare_cache_misses, 1u);
}

TEST(PlanCacheServiceTest, CachedSubmitRoutesAndAnswersLikeCold) {
  CoordinationService svc(Opts());
  // Round 1: cold prepares. Round 2: the identical texts hit the cache —
  // route and answer must be indistinguishable from the cold round.
  for (int round = 0; round < 2; ++round) {
    auto tk = svc.Submit(Query::Sql(PairSql("Kramer", "Jerry")));
    auto tj = svc.Submit(Query::Sql(PairSql("Jerry", "Kramer")));
    ASSERT_TRUE(tk.ok() && tj.ok());
    ASSERT_TRUE(svc.Drain());
    ASSERT_EQ(tk->outcome().state, ServiceOutcome::State::kAnswered)
        << tk->outcome().status.ToString();
    ASSERT_EQ(tj->outcome().state, ServiceOutcome::State::kAnswered);
    // Coordinated: both tuples name the same flight.
    const std::string& k = tk->outcome().tuples[0];
    const std::string& j = tj->outcome().tuples[0];
    EXPECT_EQ(k.substr(k.find(',')), j.substr(j.find(',')));
  }
  ServiceMetrics m = svc.Metrics();
  EXPECT_GE(m.prepare_cache_hits, 2u);  // round 2 hit both shapes
  EXPECT_EQ(m.answered, 4u);
}

TEST(PlanCacheServiceTest, BuilderProgramsShareStructuralKey) {
  CoordinationService svc(Opts());
  ASSERT_TRUE(svc.Canonicalize(PairBuilder("Kramer", "Jerry")).ok());
  uint64_t misses = svc.Metrics().prepare_cache_misses;
  // Structurally identical program built afresh: a hit, no new miss.
  ASSERT_TRUE(svc.Canonicalize(PairBuilder("Kramer", "Jerry")).ok());
  EXPECT_EQ(svc.Metrics().prepare_cache_misses, misses);
  EXPECT_GE(svc.Metrics().prepare_cache_hits, 1u);
  // A different constant is a different shape: miss.
  ASSERT_TRUE(svc.Canonicalize(PairBuilder("Elaine", "Jerry")).ok());
  EXPECT_EQ(svc.Metrics().prepare_cache_misses, misses + 1);
}

// --------------------------------------------------- eviction bounds -----

TEST(PlanCacheServiceTest, CapacityBoundEvictsLeastRecent) {
  ServiceOptions o = Opts();
  o.plan_cache_capacity = 2;
  CoordinationService svc(o);
  ASSERT_TRUE(svc.Canonicalize(Query::Ir(PairIr("A", "B"))).ok());
  ASSERT_TRUE(svc.Canonicalize(Query::Ir(PairIr("C", "D"))).ok());
  ASSERT_TRUE(svc.Canonicalize(Query::Ir(PairIr("E", "F"))).ok());  // evicts A/B
  uint64_t misses = svc.Metrics().prepare_cache_misses;
  ASSERT_TRUE(svc.Canonicalize(Query::Ir(PairIr("A", "B"))).ok());  // cold again
  ServiceMetrics m = svc.Metrics();
  EXPECT_EQ(m.prepare_cache_misses, misses + 1);
  EXPECT_GE(m.prepare_cache_evictions, 1u);
}

TEST(PlanCacheServiceTest, ZeroCapacityDisablesCaching) {
  ServiceOptions o = Opts();
  o.plan_cache_capacity = 0;
  CoordinationService svc(o);
  ASSERT_TRUE(svc.Canonicalize(Query::Ir(PairIr("A", "B"))).ok());
  ASSERT_TRUE(svc.Canonicalize(Query::Ir(PairIr("A", "B"))).ok());
  ServiceMetrics m = svc.Metrics();
  EXPECT_EQ(m.prepare_cache_hits, 0u);
  EXPECT_EQ(m.prepare_cache_misses, 0u);
}

// ----------------------------------------------- schema invalidation -----

TEST(PlanCacheServiceTest, SchemaAffectingRecycleInvalidatesPlans) {
  ServiceOptions o = Opts();
  o.edge_recycle_uses = 1;  // every cold prepare recycles its context
  CoordinationService svc(o);
  const std::string sql = PairSql("Kramer", "Jerry");
  ASSERT_TRUE(svc.Canonicalize(Query::Sql(sql)).ok());  // miss, cached
  ASSERT_TRUE(svc.Canonicalize(Query::Sql(sql)).ok());  // hit
  ASSERT_GE(svc.Metrics().prepare_cache_hits, 1u);
  EXPECT_EQ(svc.Metrics().prepare_cache_invalidations, 0u);

  // Catalog growth: a new table changes the schema fingerprint. The next
  // recycle (forced by the next cold prepare, edge_recycle_uses=1)
  // detects it and sweeps the cache.
  ASSERT_TRUE(svc.storage()
                  .mutable_db()
                  ->CreateTable("Hotels", {{"hno", ir::ValueType::kInt}})
                  .ok());
  svc.storage().Publish();
  ASSERT_TRUE(svc.Canonicalize(Query::Ir(PairIr("X", "Y"))).ok());  // recycles
  EXPECT_GE(svc.Metrics().prepare_cache_invalidations, 1u);

  // The old shape re-prepares cold (its entry was swept) and still works.
  uint64_t misses = svc.Metrics().prepare_cache_misses;
  auto again = svc.Canonicalize(Query::Sql(sql));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(svc.Metrics().prepare_cache_misses, misses + 1);

  // Data-only writes do NOT change the fingerprint: no further sweep.
  ASSERT_TRUE(svc.ExecuteWrite("INSERT INTO Flights VALUES (150, 'Paris')")
                  .ok());
  ASSERT_TRUE(svc.Canonicalize(Query::Ir(PairIr("P", "Q"))).ok());  // recycles
  EXPECT_EQ(svc.Metrics().prepare_cache_invalidations, 1u);
}

// ------------------------------------------- synchronous error parity ----

TEST(PreparePathTest, AllDialectsFailMalformedInputSynchronously) {
  CoordinationService svc(Opts());
  // IR: routable-looking but unparsable.
  auto t1 = svc.Submit(Query::Ir("{R(J, x)} R(K, x :- F(x,"));
  EXPECT_FALSE(t1.ok());
  EXPECT_EQ(t1.status().code(), StatusCode::kParseError);
  // SQL: malformed.
  auto t2 = svc.Submit(Query::Sql("SELECT INTO nothing"));
  EXPECT_FALSE(t2.ok());
  EXPECT_EQ(t2.status().code(), StatusCode::kParseError);
  // Builder: unbound head variable.
  auto t3 = svc.Submit(QueryBuilder()
                           .Postcondition("R", {Str("A"), Var("x")})
                           .Head("R", {Str("B"), Var("y")})
                           .Body("Flights", {Var("x"), Str("Paris")})
                           .Build());
  EXPECT_FALSE(t3.ok());
  EXPECT_EQ(t3.status().code(), StatusCode::kInvalidArgument);
  // Nothing was admitted; the edge parse failures are counted.
  EXPECT_EQ(svc.inflight_count(), 0u);
  EXPECT_EQ(svc.Metrics().parse_errors, 2u);
  // Failed prepares are never cached: retrying the IR text re-parses (and
  // fails again) rather than hitting a poisoned entry.
  auto t4 = svc.Submit(Query::Ir("{R(J, x)} R(K, x :- F(x,"));
  EXPECT_FALSE(t4.ok());
  EXPECT_EQ(svc.Metrics().parse_errors, 3u);
}

// ----------------------------------------------------- observability -----

TEST(PreparePathTest, CountersVisibleInExportersAndDump) {
  CoordinationService svc(Opts());
  const std::string sql = PairSql("Kramer", "Jerry");
  ASSERT_TRUE(svc.Canonicalize(Query::Sql(sql)).ok());
  ASSERT_TRUE(svc.Canonicalize(Query::Sql(sql)).ok());
  ServiceMetrics m = svc.Metrics();

  std::string prom = MetricsToPrometheusText(m);
  EXPECT_NE(prom.find("eq_prepare_cache_hits_total 1"), std::string::npos);
  EXPECT_NE(prom.find("eq_prepare_cache_misses_total 1"), std::string::npos);
  EXPECT_NE(prom.find("eq_prepare_cache_evictions_total"), std::string::npos);
  EXPECT_NE(prom.find("eq_edge_recycles_total"), std::string::npos);
  EXPECT_NE(prom.find("eq_prepare_latency_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("eq_prepare_latency_ms_count 2"), std::string::npos);

  std::string json = MetricsToJson(m);
  EXPECT_NE(json.find("\"prepare_cache_hits\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"prepare_cache_misses\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"prepare_latency_ms\""), std::string::npos);

  ServiceStateDump dump = svc.DumpState();
  EXPECT_EQ(dump.prepare.plan_cache_hits, 1u);
  EXPECT_EQ(dump.prepare.plan_cache_misses, 1u);
  EXPECT_EQ(dump.prepare.plan_cache_size, 1u);
  EXPECT_EQ(dump.prepare.edge_pool_size, svc.num_shards());
  EXPECT_NE(dump.ToString().find("prepare: edge_pool="), std::string::npos);
}

// -------------------------------------------------- concurrent stress ----

// N threads concurrently prepare all three dialects against a small pool
// with a tiny recycle threshold (recycles under contention) and a small
// plan cache (hits, misses and evictions all interleave). TSan/ASan legs
// run this; the assertions check full resolution and counter sanity.
TEST(PreparePathStressTest, ConcurrentAllDialectPreparesResolve) {
  ServiceOptions o = Opts(2);
  o.edge_pool_size = 3;
  o.edge_recycle_uses = 2;
  o.plan_cache_capacity = 8;
  CoordinationService svc(o);

  constexpr int kThreads = 4;
  constexpr int kIters = 24;
  std::atomic<int> answered{0};
  std::atomic<int> sync_errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&svc, &answered, &sync_errors, t] {
      for (int i = 0; i < kIters; ++i) {
        std::string a = "P" + std::to_string(t) + "x" + std::to_string(i);
        std::string b = "Q" + std::to_string(t) + "x" + std::to_string(i);
        Query qa = Query::Ir(PairIr(a, b));
        Query qb = Query::Ir(PairIr(b, a));
        switch (i % 3) {
          case 0:
            qa = Query::Sql(PairSql(a, b));
            qb = Query::Sql(PairSql(b, a));
            break;
          case 1:
            qa = PairBuilder(a, b);
            qb = PairBuilder(b, a);
            break;
          default:
            break;
        }
        SubmitOptions sopts;
        sopts.callback = [&answered](TicketId,
                                     const ServiceOutcome& outcome) {
          if (outcome.state == ServiceOutcome::State::kAnswered) ++answered;
        };
        auto ta = svc.Submit(qa, sopts);
        auto tb = svc.Submit(qb, sopts);
        ASSERT_TRUE(ta.ok()) << ta.status().ToString();
        ASSERT_TRUE(tb.ok()) << tb.status().ToString();
        // Malformed input stays synchronous under contention.
        if (i % 4 == 0) {
          auto bad = svc.Submit(Query::Ir("{R(J, x)} R(K, x :- F(x,"));
          if (!bad.ok()) ++sync_errors;
        }
        // SQL write translation shares the pool.
        if (i % 6 == 0) {
          auto w = svc.ExecuteWrite("INSERT INTO Flights VALUES (" +
                                    std::to_string(1000 + t * 100 + i) +
                                    ", 'Rome')");
          ASSERT_TRUE(w.ok()) << w.status().ToString();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(svc.Drain());
  EXPECT_EQ(answered.load(), 2 * kThreads * kIters);
  EXPECT_EQ(sync_errors.load(), kThreads * (kIters / 4));
  ServiceMetrics m = svc.Metrics();
  EXPECT_EQ(m.answered, static_cast<uint64_t>(2 * kThreads * kIters));
  EXPECT_GE(m.edge_recycles, 1u);
  EXPECT_GE(m.prepare_cache_evictions, 1u);
  EXPECT_EQ(m.parse_errors, static_cast<uint64_t>(sync_errors.load()));
}

// Pool of one: prepares serialize on the single context but must not
// deadlock or misbehave.
TEST(PreparePathStressTest, PoolSizeOneSerializesSafely) {
  ServiceOptions o = Opts(2);
  o.edge_pool_size = 1;
  o.edge_recycle_uses = 3;
  CoordinationService svc(o);
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&svc, &ok, t] {
      for (int i = 0; i < 16; ++i) {
        std::string a = "S" + std::to_string(t) + "x" + std::to_string(i);
        if (svc.Canonicalize(Query::Ir(PairIr(a, "Z"))).ok()) ++ok;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), 3 * 16);
}

}  // namespace
}  // namespace eq::service
