#!/usr/bin/env python3
"""Checks a freshly produced bench_service JSON against the checked-in
BENCH_service.json.

The CI bench-smoke job runs a small fixed workload and uploads its JSON as
an artifact; this script makes output drift fail the job instead of
silently shipping a broken artifact. Always checked, per the reference:

  1. sections   — the set of "bench" section names matches exactly
                  (a dropped or renamed section is a bench regression);
  2. row keys   — every row of a section carries exactly the keys the
                  reference rows of that section carry;
  3. sanity     — for every key whose value is a positive number in ALL
                  reference rows of the section, the candidate's value must
                  be a positive number too (a zeroed qps/mean_ms means the
                  bench silently measured nothing). Keys that are
                  legitimately zero in some runs (stddev with --runs=1,
                  raced/migration counters) exempt themselves by being zero
                  somewhere in the reference, or by the explicit list below.

With --compare, a perf-trajectory gate runs on top: each candidate row is
matched to the reference row with the same identity (string-valued keys
plus the sweep parameters in IDENTITY_NUMERIC_KEYS), and the performance
keys below must not regress past --max-ratio:

  * higher-is-better (qps, ops_per_sec, achieved_qps):
        fail when  got < ref / ratio
  * lower-is-better (mean_ms, us_per_op):
        fail when  got > ref * ratio + slack_ms

The additive --slack-ms keeps sub-millisecond latencies (reactive wake-up
means of ~0.05 ms) from tripping the relative gate on scheduler noise — a
real regression clears both bars easily. Candidate rows with no identity
match in the reference are skipped: CI sweeps fewer points than the
checked-in trajectory on purpose. Row *counts* are never compared for the
same reason.

Usage:
  check_bench_json.py <reference.json> <candidate.json>
      [--compare] [--max-ratio=R] [--slack-ms=S]
  check_bench_json.py --self-test
"""

import json
import numbers
import sys

# Volatile by construction: zero under --runs=1 or on quiet runs even
# though the checked-in trajectory happens to have them non-zero.
VOLATILE_KEYS = {
    "stddev_ms",
    "shared_stddev_ms",
    "copied_stddev_ms",
    "raced",
    "migrations",
    # How many notifies coalesce depends on scheduler interleaving; a
    # hypothetical run where the shard always outpaces the writers would
    # legitimately report 0.
    "coalesced",
    # Tracing overhead is a ratio against the "off" baseline: it is zero
    # for the baseline row itself and can go mildly negative on a noisy
    # run where the traced variant happens to finish faster.
    "overhead_ratio",
    # Prepare-bench hit rate is 0 by construction in the cold rows and
    # depends on warmup timing in the cached rows.
    "hit_rate",
    # Open-loop groups that missed the drain deadline; 0 on every healthy
    # run, nonzero only under CI-runner pressure.
    "failed",
}

# Sweep parameters that identify which point a row measures (as opposed to
# what it measured). Together with the string-valued keys they form the row
# identity --compare matches on.
IDENTITY_NUMERIC_KEYS = {
    "shards",
    "batch_size",
    "threads",
    "rows_per_table",
    "k",
    "offered_qps",
    "write_qps",
    "zipf_theta",
    "seed",
}

# Perf keys the --compare gate watches, by direction. Deliberately only
# size-insensitive metrics: total_ms scales with --pairs, so a smaller CI
# sweep would "regress" it without anything being slower.
HIGHER_BETTER_KEYS = {"qps", "ops_per_sec", "achieved_qps"}
LOWER_BETTER_KEYS = {"mean_ms", "us_per_op"}


def positive_number(v):
    return (
        isinstance(v, numbers.Number)
        and not isinstance(v, bool)
        and v > 0
    )


def rows_by_section(rows, path):
    out = {}
    for i, row in enumerate(rows):
        if "bench" not in row:
            raise SystemExit(f"{path}: row {i} has no 'bench' key")
        out.setdefault(row["bench"], []).append(row)
    return out


def row_identity(row):
    """Hashable identity: the string-valued keys plus sweep parameters."""
    parts = []
    for k in sorted(row):
        v = row[k]
        if isinstance(v, str) or k in IDENTITY_NUMERIC_KEYS:
            parts.append((k, v))
    return tuple(parts)


def check_schema(ref, got, ref_path):
    """Sections, row keys, positivity. Returns a list of error strings."""
    errors = []

    missing = sorted(set(ref) - set(got))
    extra = sorted(set(got) - set(ref))
    if missing:
        errors.append(f"missing sections: {missing}")
    if extra:
        errors.append(f"unexpected sections: {extra}")

    for section in sorted(set(ref) & set(got)):
        ref_rows, got_rows = ref[section], got[section]
        ref_keys = set(ref_rows[0])
        for i, row in enumerate(ref_rows[1:], 1):
            if set(row) != ref_keys:
                errors.append(
                    f"{ref_path}: section '{section}' row {i} keys disagree "
                    f"with row 0 — fix the reference first"
                )
        # Keys required to be positive: positive in EVERY reference row and
        # not known-volatile.
        required_positive = {
            k
            for k in ref_keys
            if k not in VOLATILE_KEYS
            and all(positive_number(r[k]) for r in ref_rows)
        }
        for i, row in enumerate(got_rows):
            if set(row) != ref_keys:
                errors.append(
                    f"section '{section}' row {i}: keys "
                    f"{sorted(set(row) ^ ref_keys)} differ from the "
                    f"reference schema"
                )
                continue
            for k in sorted(required_positive):
                if not positive_number(row[k]):
                    errors.append(
                        f"section '{section}' row {i}: '{k}' = {row[k]!r} "
                        f"(expected a positive number)"
                    )

    return errors


def check_compare(ref, got, max_ratio, slack_ms):
    """Perf-trajectory gate. Returns (errors, compared, skipped)."""
    errors = []
    compared = 0
    skipped = 0

    for section in sorted(set(ref) & set(got)):
        # A reference identity can legitimately map to several rows (the
        # trajectory keeps historical repeats); gate against the most
        # lenient one so runner variance between archived runs never turns
        # into a false positive.
        by_identity = {}
        for r in ref[section]:
            by_identity.setdefault(row_identity(r), []).append(r)

        for row in got[section]:
            matches = by_identity.get(row_identity(row))
            if not matches:
                skipped += 1
                continue
            watched = [
                k
                for k in sorted(row)
                if k in (HIGHER_BETTER_KEYS | LOWER_BETTER_KEYS)
                and k not in VOLATILE_KEYS
                and isinstance(row.get(k), numbers.Number)
            ]
            point = ", ".join(
                f"{k}={v}" for k, v in row_identity(row) if k != "bench"
            )
            for k in watched:
                refs = [
                    m[k] for m in matches
                    if isinstance(m.get(k), numbers.Number)
                ]
                if not refs:
                    continue
                compared += 1
                gv = row[k]
                if k in HIGHER_BETTER_KEYS:
                    bar = min(refs) / max_ratio
                    if gv < bar:
                        errors.append(
                            f"section '{section}' ({point}): '{k}' = "
                            f"{gv:g} regressed more than {max_ratio:g}x "
                            f"below the reference {min(refs):g}"
                        )
                else:
                    bar = max(refs) * max_ratio + slack_ms
                    if gv > bar:
                        errors.append(
                            f"section '{section}' ({point}): '{k}' = "
                            f"{gv:g} regressed past the reference "
                            f"{max(refs):g} (limit {bar:g} = "
                            f"{max_ratio:g}x + {slack_ms:g}ms slack)"
                        )
    return errors, compared, skipped


# --------------------------------------------------------------- self-test --

SELF_TEST_REF = [
    {"bench": "service_scaling", "workload": "social", "shards": 2,
     "qps": 40000.0, "total_ms": 100.0, "answered": 4000},
    {"bench": "service_scaling", "workload": "social", "shards": 4,
     "qps": 70000.0, "total_ms": 60.0, "answered": 4000},
    {"bench": "reactive", "path": "wakeup", "mean_ms": 0.05,
     "rounds": 200, "raced": 3},
    {"bench": "workload", "workload": "kway", "k": 3,
     "offered_qps": 800.0, "achieved_qps": 790.0, "mean_ms": 0.4,
     "failed": 0, "seed": 42},
]


def _clone(rows):
    return json.loads(json.dumps(rows))


def self_test():
    """Negative fixtures: the checker must fail on each seeded defect and
    pass on a clean candidate. Mirrors check_docs.py --self-test."""
    failures = []

    def expect(name, want_errors, errors):
        ok = bool(errors) == want_errors
        if not ok:
            failures.append(name)
        status = "ok" if ok else "FAILED"
        detail = f" ({errors[0]})" if errors else ""
        print(f"  self-test {name}: {status}{detail}")

    ref = rows_by_section(_clone(SELF_TEST_REF), "<ref>")

    # Clean candidate passes both modes.
    clean = rows_by_section(_clone(SELF_TEST_REF), "<got>")
    expect("clean-schema-passes", False, check_schema(ref, clean, "<ref>"))
    expect("clean-compare-passes", False,
           check_compare(ref, clean, 2.0, 2.0)[0])

    # Dropped section.
    rows = [r for r in _clone(SELF_TEST_REF) if r["bench"] != "reactive"]
    expect("missing-section-fails", True,
           check_schema(ref, rows_by_section(rows, "<got>"), "<ref>"))

    # Dropped key on one row.
    rows = _clone(SELF_TEST_REF)
    del rows[0]["qps"]
    expect("missing-key-fails", True,
           check_schema(ref, rows_by_section(rows, "<got>"), "<ref>"))

    # Zeroed metric that is positive in every reference row.
    rows = _clone(SELF_TEST_REF)
    rows[1]["qps"] = 0
    expect("zeroed-metric-fails", True,
           check_schema(ref, rows_by_section(rows, "<got>"), "<ref>"))

    # Volatile key at zero stays legal.
    rows = _clone(SELF_TEST_REF)
    rows[2]["raced"] = 0
    expect("volatile-zero-passes", False,
           check_schema(ref, rows_by_section(rows, "<got>"), "<ref>"))

    # Compare: qps regression beyond the ratio fails ...
    rows = _clone(SELF_TEST_REF)
    rows[0]["qps"] = 15000.0  # ref 40000, ratio 2 -> bar 20000
    expect("qps-regression-fails", True,
           check_compare(ref, rows_by_section(rows, "<got>"), 2.0, 2.0)[0])

    # ... while one within the ratio passes.
    rows = _clone(SELF_TEST_REF)
    rows[0]["qps"] = 25000.0
    expect("qps-within-ratio-passes", False,
           check_compare(ref, rows_by_section(rows, "<got>"), 2.0, 2.0)[0])

    # Compare: latency regression past ratio + slack fails ...
    rows = _clone(SELF_TEST_REF)
    rows[3]["mean_ms"] = 3.5  # ref 0.4, bar = 0.8 + 2.0 = 2.8
    expect("latency-regression-fails", True,
           check_compare(ref, rows_by_section(rows, "<got>"), 2.0, 2.0)[0])

    # ... but the slack absorbs sub-millisecond noise.
    rows = _clone(SELF_TEST_REF)
    rows[2]["mean_ms"] = 0.5  # 10x the 0.05 ref, still under the 2ms slack
    expect("slack-absorbs-noise", False,
           check_compare(ref, rows_by_section(rows, "<got>"), 2.0, 2.0)[0])

    # Compare: achieved_qps collapse (saturation regression) fails.
    rows = _clone(SELF_TEST_REF)
    rows[3]["achieved_qps"] = 100.0
    expect("achieved-qps-collapse-fails", True,
           check_compare(ref, rows_by_section(rows, "<got>"), 2.0, 2.0)[0])

    # Compare: a row with no identity match is skipped, not failed.
    rows = _clone(SELF_TEST_REF)
    rows[3]["k"] = 7
    rows[3]["achieved_qps"] = 1.0
    errors, _, skipped = check_compare(
        ref, rows_by_section(rows, "<got>"), 2.0, 2.0)
    expect("unmatched-row-skipped", False, errors)
    if skipped != 1:
        failures.append("unmatched-row-skip-count")
        print(f"  self-test unmatched-row-skip-count: FAILED ({skipped})")

    if failures:
        print(f"self-test FAILED: {failures}")
        return 1
    print("self-test OK")
    return 0


def main():
    argv = sys.argv[1:]
    if argv == ["--self-test"]:
        return self_test()

    compare = False
    max_ratio = 2.0
    slack_ms = 2.0
    paths = []
    for a in argv:
        if a == "--compare":
            compare = True
        elif a.startswith("--max-ratio="):
            max_ratio = float(a[len("--max-ratio="):])
        elif a.startswith("--slack-ms="):
            slack_ms = float(a[len("--slack-ms="):])
        else:
            paths.append(a)
    if len(paths) != 2 or max_ratio < 1.0:
        raise SystemExit(__doc__)

    ref_path, got_path = paths
    with open(ref_path) as f:
        ref = rows_by_section(json.load(f), ref_path)
    with open(got_path) as f:
        got = rows_by_section(json.load(f), got_path)

    errors = check_schema(ref, got, ref_path)
    note = ""
    if compare:
        cmp_errors, compared, skipped = check_compare(
            ref, got, max_ratio, slack_ms)
        errors += cmp_errors
        note = (f"; perf gate: {compared} comparisons"
                f" ({skipped} rows without a reference point skipped)")

    if errors:
        print(f"bench JSON check FAILED ({got_path} vs {ref_path}):")
        for e in errors:
            print(f"  - {e}")
        return 1
    sections = ", ".join(sorted(got))
    print(f"bench JSON check OK: sections [{sections}] match the "
          f"reference{note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
