#!/usr/bin/env python3
"""Checks a freshly produced bench_service JSON against the checked-in
BENCH_service.json schema.

The CI bench-smoke job runs a small fixed workload and uploads its JSON as
an artifact; this script makes output drift fail the job instead of
silently shipping a broken artifact. Checked, per the reference file:

  1. sections   — the set of "bench" section names matches exactly
                  (a dropped or renamed section is a bench regression);
  2. row keys   — every row of a section carries exactly the keys the
                  reference rows of that section carry;
  3. sanity     — for every key whose value is a positive number in ALL
                  reference rows of the section, the candidate's value must
                  be a positive number too (a zeroed qps/mean_ms means the
                  bench silently measured nothing). Keys that are
                  legitimately zero in some runs (stddev with --runs=1,
                  raced/migration counters) exempt themselves by being zero
                  somewhere in the reference, or by the explicit list below.

Row *counts* are not compared: CI sweeps fewer shard points than the
checked-in trajectory on purpose.

Usage: check_bench_json.py <reference.json> <candidate.json>
"""

import json
import numbers
import sys

# Volatile by construction: zero under --runs=1 or on quiet runs even
# though the checked-in trajectory happens to have them non-zero.
VOLATILE_KEYS = {
    "stddev_ms",
    "shared_stddev_ms",
    "copied_stddev_ms",
    "raced",
    "migrations",
    # How many notifies coalesce depends on scheduler interleaving; a
    # hypothetical run where the shard always outpaces the writers would
    # legitimately report 0.
    "coalesced",
    # Tracing overhead is a ratio against the "off" baseline: it is zero
    # for the baseline row itself and can go mildly negative on a noisy
    # run where the traced variant happens to finish faster.
    "overhead_ratio",
    # Prepare-bench hit rate is 0 by construction in the cold rows and
    # depends on warmup timing in the cached rows.
    "hit_rate",
}


def positive_number(v):
    return (
        isinstance(v, numbers.Number)
        and not isinstance(v, bool)
        and v > 0
    )


def rows_by_section(rows, path):
    out = {}
    for i, row in enumerate(rows):
        if "bench" not in row:
            raise SystemExit(f"{path}: row {i} has no 'bench' key")
        out.setdefault(row["bench"], []).append(row)
    return out


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    ref_path, got_path = sys.argv[1], sys.argv[2]
    with open(ref_path) as f:
        ref = rows_by_section(json.load(f), ref_path)
    with open(got_path) as f:
        got = rows_by_section(json.load(f), got_path)

    errors = []

    missing = sorted(set(ref) - set(got))
    extra = sorted(set(got) - set(ref))
    if missing:
        errors.append(f"missing sections: {missing}")
    if extra:
        errors.append(f"unexpected sections: {extra}")

    for section in sorted(set(ref) & set(got)):
        ref_rows, got_rows = ref[section], got[section]
        ref_keys = set(ref_rows[0])
        for i, row in enumerate(ref_rows[1:], 1):
            if set(row) != ref_keys:
                errors.append(
                    f"{ref_path}: section '{section}' row {i} keys disagree "
                    f"with row 0 — fix the reference first"
                )
        # Keys required to be positive: positive in EVERY reference row and
        # not known-volatile.
        required_positive = {
            k
            for k in ref_keys
            if k not in VOLATILE_KEYS
            and all(positive_number(r[k]) for r in ref_rows)
        }
        for i, row in enumerate(got_rows):
            if set(row) != ref_keys:
                errors.append(
                    f"section '{section}' row {i}: keys "
                    f"{sorted(set(row) ^ ref_keys)} differ from the "
                    f"reference schema"
                )
                continue
            for k in sorted(required_positive):
                if not positive_number(row[k]):
                    errors.append(
                        f"section '{section}' row {i}: '{k}' = {row[k]!r} "
                        f"(expected a positive number)"
                    )

    if errors:
        print(f"bench JSON check FAILED ({got_path} vs {ref_path}):")
        for e in errors:
            print(f"  - {e}")
        return 1
    sections = ", ".join(sorted(got))
    print(f"bench JSON check OK: sections [{sections}] match the reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
