#!/usr/bin/env python3
"""Smoke-validates Prometheus text exposition output (MetricsToPrometheusText).

Checked:

  1. syntax     — every line is a '# HELP', '# TYPE', or sample line matching
                  the exposition format (metric names, optional {k="v"}
                  labels, float value);
  2. metadata   — every sample belongs to a family announced by a preceding
                  '# TYPE' line with a known type, and each family carries a
                  '# HELP' line;
  3. histograms — for every family of type histogram, per label set: bucket
                  counts are cumulative (non-decreasing as 'le' grows), the
                  last bucket is le="+Inf", and <family>_count equals the
                  +Inf bucket; <family>_sum and <family>_count are present.

Usage: check_prometheus.py <metrics.prom>
"""

import re
import sys

NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
HELP_RE = re.compile(rf"^# HELP ({NAME}) .+$")
TYPE_RE = re.compile(rf"^# TYPE ({NAME}) (counter|gauge|histogram|summary)$")
SAMPLE_RE = re.compile(
    rf"^({NAME})"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})?'
    r" (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def family_of(name):
    """Strips the histogram sample suffix to get the announced family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    path = sys.argv[1]
    with open(path) as f:
        lines = f.read().splitlines()

    errors = []
    helps, types = {}, {}
    # (family, labels-minus-le) -> list of (le, value) in file order.
    buckets = {}
    # (family, labels) -> value, for _count / _sum cross-checks.
    series = {}

    for i, line in enumerate(lines, 1):
        if not line:
            continue
        if line.startswith("#"):
            m = HELP_RE.match(line)
            if m:
                helps[m.group(1)] = True
                continue
            m = TYPE_RE.match(line)
            if m:
                types[m.group(1)] = m.group(2)
                continue
            errors.append(f"line {i}: malformed comment line: {line!r}")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {i}: malformed sample line: {line!r}")
            continue
        name, labeltext, value = m.group(1), m.group(2) or "", m.group(4)
        fam = family_of(name)
        announced = name if name in types else fam
        if announced not in types:
            errors.append(f"line {i}: sample '{name}' has no # TYPE line")
            continue
        if announced not in helps:
            errors.append(f"line {i}: sample '{name}' has no # HELP line")
        labels = dict(LABEL_RE.findall(labeltext))
        if types[announced] == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                errors.append(f"line {i}: histogram bucket without 'le' label")
                continue
            le = labels.pop("le")
            key = (announced, tuple(sorted(labels.items())))
            buckets.setdefault(key, []).append((le, float(value)))
        else:
            series[(name, tuple(sorted(labels.items())))] = float(value)

    for (fam, labels), rows in sorted(buckets.items()):
        where = f"histogram '{fam}'" + (f" {dict(labels)}" if labels else "")
        if rows[-1][0] != "+Inf":
            errors.append(f"{where}: last bucket is le=\"{rows[-1][0]}\", "
                          f"expected +Inf")
        prev_le, prev_count = None, None
        for le, count in rows:
            le_num = float("inf") if le == "+Inf" else float(le)
            if prev_le is not None and le_num <= prev_le:
                errors.append(f"{where}: le={le} out of order")
            if prev_count is not None and count < prev_count:
                errors.append(
                    f"{where}: bucket le={le} count {count} < previous "
                    f"{prev_count} (buckets must be cumulative)"
                )
            prev_le, prev_count = le_num, count
        total = series.get((fam + "_count", labels))
        if total is None:
            errors.append(f"{where}: missing {fam}_count")
        elif total != rows[-1][1]:
            errors.append(
                f"{where}: {fam}_count = {total} but +Inf bucket = "
                f"{rows[-1][1]}"
            )
        if (fam + "_sum", labels) not in series:
            errors.append(f"{where}: missing {fam}_sum")

    hist_families = [f for f, t in types.items() if t == "histogram"]
    if not hist_families:
        errors.append("no histogram family found (expected eq_latency_ms)")

    if errors:
        print(f"prometheus check FAILED ({path}):")
        for e in errors:
            print(f"  - {e}")
        return 1
    print(
        f"prometheus check OK: {path} — {len(types)} families, "
        f"{len(series) + sum(len(v) for v in buckets.values())} samples, "
        f"histograms cumulative"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
