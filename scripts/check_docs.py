#!/usr/bin/env python3
"""Markdown lint + internal-link checker for the repo's documentation.

Keeps README/ROADMAP/docs/ from rotting silently: a renamed file, a
deleted heading, or an unbalanced code fence fails CI instead of shipping
a dead link. Checked, per file:

  1. internal links — every non-external `[text](target)` target must
     exist on disk (resolved relative to the file; `#fragment`s are
     stripped first);
  2. anchors — a link to `file#heading` (or a same-file `#heading`) must
     name a real heading in the target file, using GitHub's slug rules
     (lowercase, spaces → dashes, punctuation dropped);
  3. code fences — every ``` fence must be closed (an unbalanced fence
     swallows the rest of the document in rendered views);
  4. trailing whitespace — disallowed outside code fences (it renders as
     a hard break on GitHub, almost always unintentionally).

External links (http://, https://, mailto:) are NOT fetched — network
reachability is not this script's business.

Usage: check_docs.py <file-or-dir> [...]
       (directories are scanned recursively for *.md)
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
EXTERNAL = ("http://", "https://", "mailto:")


def github_slug(heading):
    """GitHub's anchor slug: lowercase, strip punctuation, spaces→dashes.
    Underscores survive (GitHub keeps them: `edge_recycle_uses` slugs to
    edge_recycle_uses); backticks/asterisks are formatting and drop."""
    text = re.sub(r"[`*]", "", heading.strip())
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return text.replace(" ", "-")


def parse(path):
    """Returns (links, slugs, errors) for one markdown file. Links and the
    lint checks skip fenced code blocks; an unclosed fence is an error."""
    links, slugs, errors = [], set(), []
    in_fence = False
    fence_line = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            stripped = line.rstrip("\n")
            if stripped.lstrip().startswith("```"):
                in_fence = not in_fence
                fence_line = lineno
                continue
            if in_fence:
                continue
            if stripped != stripped.rstrip():
                errors.append(f"{path}:{lineno}: trailing whitespace")
            m = HEADING_RE.match(stripped)
            if m:
                slugs.add(github_slug(m.group(2)))
            for target in LINK_RE.findall(stripped):
                links.append((lineno, target))
    if in_fence:
        errors.append(f"{path}:{fence_line}: unclosed code fence")
    return links, slugs, errors


def main():
    if len(sys.argv) < 2:
        raise SystemExit(__doc__)
    files = []
    for arg in sys.argv[1:]:
        if os.path.isdir(arg):
            for root, _dirs, names in os.walk(arg):
                files.extend(
                    os.path.join(root, n) for n in names if n.endswith(".md")
                )
        else:
            files.append(arg)

    parsed = {}  # path -> (links, slugs)
    errors = []
    for path in sorted(set(files)):
        links, slugs, errs = parse(path)
        parsed[path] = (links, slugs)
        errors.extend(errs)

    def slugs_of(path):
        if path not in parsed:
            _links, slugs, errs = parse(path)
            parsed[path] = ([], slugs)
            errors.extend(errs)
        return parsed[path][1]

    for path, (links, _slugs) in sorted(parsed.items()):
        base = os.path.dirname(path)
        for lineno, target in links:
            if target.startswith(EXTERNAL):
                continue
            raw, _, fragment = target.partition("#")
            dest = os.path.normpath(os.path.join(base, raw)) if raw else path
            if not os.path.exists(dest):
                errors.append(f"{path}:{lineno}: broken link '{target}' "
                              f"({dest} does not exist)")
                continue
            if fragment and dest.endswith(".md"):
                if fragment not in slugs_of(dest):
                    errors.append(f"{path}:{lineno}: broken anchor "
                                  f"'{target}' (no heading '#{fragment}' "
                                  f"in {dest})")

    if errors:
        print(f"docs check FAILED ({len(errors)} problem(s)):")
        for e in errors:
            print(f"  - {e}")
        return 1
    print(f"docs check OK: {len(parsed)} file(s), all internal links and "
          f"anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
