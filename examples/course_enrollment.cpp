// Course enrollment: friends register for the same classes.
//
// "College students want to enroll in the same courses as their friends"
// (§1.1). Elaine and George each want one database course — but only if
// the other takes the same one; George additionally refuses morning slots.
// A second pair uses the CHOOSE k extension (§6): they want up to TWO
// shared courses, not just one.
//
// The example drives the engine through the Datalog-style IR frontend
// (ir::Parser) rather than SQL, showing the second public way in.
//
// Build & run:   ./build/examples/course_enrollment

#include <cstdio>

#include "db/database.h"
#include "engine/engine.h"
#include "ir/parser.h"

using namespace eq;

int main() {
  ir::QueryContext ctx;
  db::Database db(&ctx.interner());

  // Courses(cid, dept, slot): slot is the hour the class meets.
  db.CreateTable("Courses", {{"cid", ir::ValueType::kInt},
                             {"dept", ir::ValueType::kString},
                             {"slot", ir::ValueType::kInt}});
  auto S = [&](const char* s) { return ir::Value::Str(ctx.Intern(s)); };
  struct CourseRow {
    int cid;
    const char* dept;
    int slot;
  };
  for (const CourseRow& c : std::initializer_list<CourseRow>{
           {4320, "DB", 9},
           {4330, "DB", 14},
           {5414, "DB", 16},
           {3110, "PL", 10},
           {4820, "Theory", 11},
       }) {
    db.Insert("Courses",
              {ir::Value::Int(c.cid), S(c.dept), ir::Value::Int(c.slot)});
  }
  db.GetTable("Courses")->BuildIndex(1);

  engine::CoordinationEngine engine(&ctx, &db,
                                    {.mode = engine::EvalMode::kIncremental});
  engine.SetCallback([&](ir::QueryId id, const engine::QueryOutcome& o) {
    if (o.state == engine::QueryOutcome::State::kAnswered) {
      for (const auto& t : o.tuples) {
        std::printf("  enrolled: %s\n", t.ToString(ctx.interner()).c_str());
      }
    } else {
      std::printf("  query %u failed: %s\n", id, o.status.ToString().c_str());
    }
  });

  ir::Parser parser(&ctx);
  auto submit = [&](const char* text) {
    auto q = parser.ParseQuery(text);
    if (!q.ok()) {
      std::fprintf(stderr, "parse error: %s\n", q.status().ToString().c_str());
      return;
    }
    auto r = engine.Submit(std::move(q).value());
    if (!r.ok()) {
      std::fprintf(stderr, "submit rejected: %s\n",
                   r.status().ToString().c_str());
    }
  };

  // --- Elaine ↔ George: one shared DB course, George's slot constraint ----
  std::printf("Elaine wants any DB course George also takes:\n");
  submit(
      "elaine: {Enroll(George, c)} Enroll(Elaine, c) :- "
      "Courses(c, 'DB', s)");
  std::printf("George wants the same, but not before noon:\n");
  submit(
      "george: {Enroll(Elaine, c2)} Enroll(George, c2) :- "
      "Courses(c2, 'DB', s2), s2 >= 12");
  // The coordinated choice must satisfy BOTH: a DB course at/after noon
  // (4330 or 5414) — never 9am 4320.

  // --- Susan ↔ Peterman: two shared courses via CHOOSE 2 (§6 extension) ---
  std::printf("\nSusan and Peterman want up to TWO shared DB courses:\n");
  submit(
      "susan: {Enroll(Peterman, c3)} Enroll(Susan, c3) :- "
      "Courses(c3, 'DB', s3) choose 2");
  submit(
      "peterman: {Enroll(Susan, c4)} Enroll(Peterman, c4) :- "
      "Courses(c4, 'DB', s4) choose 2");

  // --- Newman: wants to enroll with Jerry, who never registers ------------
  std::printf("\nNewman waits for Jerry (who never shows up):\n");
  submit(
      "newman: {Enroll(Jerry, c5)} Enroll(Newman, c5) :- "
      "Courses(c5, 'PL', s5)");
  std::printf("  pending queries: %zu\n", engine.pending_count());
  engine.Flush().ok();  // term deadline: resolve everything

  std::printf("\n%llu coordinated groups evaluated, %llu queries answered\n",
              static_cast<unsigned long long>(engine.metrics().combined_queries),
              static_cast<unsigned long long>(engine.metrics().answered));
  return engine.metrics().answered >= 4 ? 0 : 1;
}
