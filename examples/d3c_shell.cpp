// d3c_shell — an interactive shell for the entangled-queries engine.
//
// The paper notes that "entangled queries can, in principle, be input by
// hand" (§5.1); this tool makes that concrete. It reads ';'-terminated
// statements from stdin (or a script file passed as argv[1]):
//
//   CREATE TABLE Flights (fno INT, dest STR);
//   INSERT Flights (122, 'Paris');
//   DELETE FROM Flights WHERE dest = 'Paris' AND fno < 123;
//   UPDATE Flights SET dest = 'Naples' WHERE fno = 136;
//   INDEX Flights dest;
//   SELECT 'Kramer', fno INTO ANSWER R
//     WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
//     AND ('Jerry', fno) IN ANSWER R CHOOSE 1;
//   IR {R(Kramer, x)} R(Jerry, x) :- Flights(x, 'Paris');
//   STATUS;            -- pending / answered / failed counters
//   TTL 20;            -- staleness for subsequent queries (logical ticks)
//   TICK 25;           -- advance the clock (expires stale queries)
//   FLUSH;             -- set-at-a-time resolution of everything pending
//   HELP; QUIT;
//
// Answers arrive asynchronously through the engine callback and are printed
// as soon as a coordination partner appears.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "db/database.h"
#include "engine/engine.h"
#include "ir/parser.h"
#include "sql/translator.h"

namespace {

using namespace eq;

class Shell {
 public:
  Shell()
      : db_(&ctx_.interner()),
        engine_(&ctx_, &db_, {.mode = engine::EvalMode::kIncremental}) {
    engine_.SetCallback(
        [this](ir::QueryId id, const engine::QueryOutcome& outcome) {
          if (outcome.state == engine::QueryOutcome::State::kAnswered) {
            for (const auto& t : outcome.tuples) {
              std::printf("[q%u] answered: %s\n", id,
                          t.ToString(ctx_.interner()).c_str());
            }
          } else {
            std::printf("[q%u] failed: %s\n", id,
                        outcome.status.ToString().c_str());
          }
        });
  }

  /// Executes one ';'-terminated statement. Returns false on QUIT.
  bool Execute(const std::string& stmt) {
    std::string word = FirstWord(stmt);
    if (word.empty()) return true;
    if (word == "QUIT" || word == "EXIT") return false;
    if (word == "HELP") {
      Help();
    } else if (word == "CREATE") {
      Report(Refreshing(CreateTable(stmt)));
    } else if (word == "INSERT") {
      Report(Refreshing(Insert(stmt)));
    } else if (word == "DELETE" || word == "UPDATE") {
      Report(Refreshing(Write(stmt)));
    } else if (word == "INDEX") {
      Report(Refreshing(Index(stmt)));
    } else if (word == "SELECT") {
      SubmitSql(stmt);
    } else if (word == "IR") {
      SubmitIr(stmt.substr(stmt.find("IR") + 2));
    } else if (word == "FLUSH") {
      engine_.Flush().ok();
      std::printf("flushed; pending=%zu\n", engine_.pending_count());
    } else if (word == "TICK") {
      uint64_t t = 0;
      std::sscanf(stmt.c_str(), "%*s %llu", (unsigned long long*)&t);
      engine_.AdvanceTime(engine_.now() + t);
      std::printf("clock=%llu pending=%zu\n",
                  (unsigned long long)engine_.now(), engine_.pending_count());
    } else if (word == "TTL") {
      std::sscanf(stmt.c_str(), "%*s %llu", (unsigned long long*)&ttl_);
      std::printf("ttl=%llu ticks for subsequent queries\n",
                  (unsigned long long)ttl_);
    } else if (word == "STATUS") {
      const auto& m = engine_.metrics();
      std::printf(
          "pending=%zu answered=%llu failed=%llu expired=%llu "
          "unsafe=%llu combined_queries=%llu\n",
          engine_.pending_count(), (unsigned long long)m.answered,
          (unsigned long long)m.failed, (unsigned long long)m.expired,
          (unsigned long long)m.rejected_unsafe,
          (unsigned long long)m.combined_queries);
    } else {
      std::printf("unknown statement '%s' (try HELP)\n", word.c_str());
    }
    return true;
  }

 private:
  static std::string FirstWord(const std::string& s) {
    size_t i = 0;
    while (i < s.size() && std::isspace((unsigned char)s[i])) ++i;
    size_t j = i;
    while (j < s.size() && (std::isalpha((unsigned char)s[j]))) ++j;
    std::string w = s.substr(i, j - i);
    for (char& c : w) c = static_cast<char>(std::toupper((unsigned char)c));
    return w;
  }

  static void Report(const Status& st) {
    std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
  }

  void Help() {
    std::printf(
        "statements (terminate with ';'):\n"
        "  CREATE TABLE name (col TYPE, ...)   TYPE = INT | STR\n"
        "  INSERT name (value, ...)            value = 123 | 'text'\n"
        "  DELETE FROM name [WHERE col op lit [AND ...]]\n"
        "  UPDATE name SET col = lit [, ...] [WHERE ...]   op = = != < <= > >=\n"
        "  INDEX name column\n"
        "  SELECT ... INTO ANSWER ... CHOOSE k   entangled SQL (paper §2.1)\n"
        "  IR {C} H :- B                         Datalog-style IR (§2.2)\n"
        "  TTL n | TICK n | FLUSH | STATUS | HELP | QUIT\n");
  }

  Status CreateTable(const std::string& stmt) {
    // CREATE TABLE name ( col TYPE , ... )
    std::istringstream in(stmt);
    std::string kw1, kw2, name;
    in >> kw1 >> kw2 >> name;
    size_t open = stmt.find('(');
    size_t close = stmt.rfind(')');
    if (name.empty() || open == std::string::npos || close == std::string::npos ||
        close < open) {
      return Status::ParseError("usage: CREATE TABLE name (col TYPE, ...)");
    }
    // Strip a '(' glued to the name.
    if (size_t p = name.find('('); p != std::string::npos) {
      name = name.substr(0, p);
    }
    db::Schema schema;
    std::string cols = stmt.substr(open + 1, close - open - 1);
    std::istringstream cin2(cols);
    std::string piece;
    while (std::getline(cin2, piece, ',')) {
      std::istringstream pin(piece);
      std::string col, type;
      pin >> col >> type;
      for (char& c : type) c = static_cast<char>(std::toupper((unsigned char)c));
      if (col.empty() || (type != "INT" && type != "STR")) {
        return Status::ParseError("bad column spec '" + piece + "'");
      }
      schema.columns.push_back(db::Column{
          col, type == "INT" ? ir::ValueType::kInt : ir::ValueType::kString});
    }
    if (schema.columns.empty()) {
      return Status::ParseError("table needs at least one column");
    }
    return db_.CreateTable(name, std::move(schema));
  }

  /// The engine evaluates an immutable snapshot; after any catalog/data
  /// mutation, hand it a fresh one (between statements the engine is
  /// always idle, so adoption is safe).
  Status Refreshing(Status st) {
    if (st.ok()) engine_.AdoptSnapshot(db_.snapshot());
    return st;
  }

  Status Insert(const std::string& stmt) {
    // INSERT name ( v1, v2, ... )
    std::istringstream in(stmt);
    std::string kw, name;
    in >> kw >> name;
    size_t open = stmt.find('(');
    size_t close = stmt.rfind(')');
    if (name.empty() || open == std::string::npos || close == std::string::npos) {
      return Status::ParseError("usage: INSERT name (v1, v2, ...)");
    }
    if (size_t p = name.find('('); p != std::string::npos) {
      name = name.substr(0, p);
    }
    db::Row row;
    std::string vals = stmt.substr(open + 1, close - open - 1);
    std::istringstream vin(vals);
    std::string piece;
    while (std::getline(vin, piece, ',')) {
      // Trim.
      size_t b = piece.find_first_not_of(" \t\n");
      size_t e = piece.find_last_not_of(" \t\n");
      if (b == std::string::npos) {
        return Status::ParseError("empty value");
      }
      piece = piece.substr(b, e - b + 1);
      if (piece.front() == '\'') {
        if (piece.size() < 2 || piece.back() != '\'') {
          return Status::ParseError("unterminated string " + piece);
        }
        row.push_back(ctx_.StrValue(piece.substr(1, piece.size() - 2)));
      } else {
        row.push_back(ir::Value::Int(std::atoll(piece.c_str())));
      }
    }
    return db_.Insert(name, std::move(row));
  }

  /// SQL DELETE/UPDATE through the same translator the service uses: the
  /// statement is resolved and type-checked against the current snapshot,
  /// then applied to the shell's database (row count reported).
  Status Write(const std::string& stmt) {
    sql::Translator tr(&ctx_, &db_);
    auto w = tr.TranslateWriteSql(stmt);
    if (!w.ok()) return w.status();
    db::Table* table = db_.GetTable(w->table());
    if (table == nullptr) return Status::NotFound("no table " + w->table());
    size_t rows = 0;
    if (w->kind() == db::Storage::TableWrite::Kind::kDelete) {
      EQ_RETURN_NOT_OK(table->DeleteWhere(w->write.pred, &rows));
    } else {
      EQ_RETURN_NOT_OK(table->UpdateWhere(w->write.pred, w->write.sets, &rows));
    }
    std::printf("%zu row(s) affected\n", rows);
    return Status::OK();
  }

  Status Index(const std::string& stmt) {
    std::istringstream in(stmt);
    std::string kw, name, col;
    in >> kw >> name >> col;
    db::Table* table = db_.GetTable(name);
    if (table == nullptr) return Status::NotFound("no table " + name);
    int idx = table->schema().ColumnIndex(col);
    if (idx < 0) return Status::NotFound("no column " + col);
    return table->BuildIndex(static_cast<size_t>(idx));
  }

  void SubmitSql(const std::string& stmt) {
    sql::Translator tr(&ctx_, &db_);
    auto q = tr.TranslateSql(stmt);
    if (!q.ok()) {
      std::printf("error: %s\n", q.status().ToString().c_str());
      return;
    }
    Submit(std::move(q).value());
  }

  void SubmitIr(const std::string& text) {
    ir::Parser parser(&ctx_);
    auto q = parser.ParseQuery(text);
    if (!q.ok()) {
      std::printf("error: %s\n", q.status().ToString().c_str());
      return;
    }
    Submit(std::move(q).value());
  }

  void Submit(ir::EntangledQuery q) {
    auto r = engine_.Submit(std::move(q), ttl_);
    if (!r.ok()) {
      std::printf("rejected: %s\n", r.status().ToString().c_str());
      return;
    }
    if (engine_.outcome(*r).state == engine::QueryOutcome::State::kPending) {
      std::printf("[q%u] pending (awaiting coordination partners)\n", *r);
    }
  }

  ir::QueryContext ctx_;
  db::Database db_;
  engine::CoordinationEngine engine_;
  uint64_t ttl_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::ifstream file;
  std::istream* in = &std::cin;
  bool interactive = true;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    in = &file;
    interactive = false;
  }

  Shell shell;
  if (interactive) {
    std::printf("entangled-queries shell — HELP; for commands\n");
  }
  std::string buffer, line;
  while (std::getline(*in, line)) {
    // Strip -- comments.
    if (size_t c = line.find("--"); c != std::string::npos) {
      line = line.substr(0, c);
    }
    buffer += line + "\n";
    size_t semi;
    while ((semi = buffer.find(';')) != std::string::npos) {
      std::string stmt = buffer.substr(0, semi);
      buffer = buffer.substr(semi + 1);
      if (!shell.Execute(stmt)) return 0;
    }
  }
  return 0;
}
