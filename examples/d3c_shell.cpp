// d3c_shell — an interactive shell for the entangled-queries service.
//
// The paper notes that "entangled queries can, in principle, be input by
// hand" (§5.1); this tool makes that concrete. It reads ';'-terminated
// statements from stdin (or a script file passed as argv[1]):
//
//   CREATE TABLE Flights (fno INT, dest STR);
//   INSERT Flights (122, 'Paris');
//   DELETE FROM Flights WHERE dest = 'Paris' AND fno < 123;
//   UPDATE Flights SET dest = 'Naples' WHERE fno = 136;
//   INDEX Flights dest;
//   SELECT 'Kramer', fno INTO ANSWER R
//     WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
//     AND ('Jerry', fno) IN ANSWER R CHOOSE 1;
//   IR {R(Kramer, x)} R(Jerry, x) :- Flights(x, 'Paris');
//   STATUS;            -- full service metrics (per-shard lines included)
//   TTL 20;            -- staleness for subsequent queries (logical ticks)
//   TICK 25;           -- advance the clock (expires stale queries)
//   FLUSH;             -- set-at-a-time resolution of everything pending
//   HELP; QUIT;
//
// Lines starting with '\' are immediate observability commands (no ';'):
//
//   \metrics [prom|json] [file]   exporter output (default: prom, stdout)
//   \trace <ticket-id>            recorded lifecycle of one query
//   \state                        pending-state dump (queues, groups, lag)
//
// The shell runs on a CoordinationService with lazy start: CREATE / INSERT
// / INDEX statements before the first query accumulate into the service
// bootstrap; the first query (or '\' command) starts the service. After
// start, INSERT / DELETE / UPDATE flow through the versioned write path
// and wake exactly the pending queries that read a touched relation.
// Answers arrive asynchronously through ticket callbacks and are printed
// as soon as a coordination partner appears.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "client/query.h"
#include "db/database.h"
#include "ir/query.h"
#include "service/export.h"
#include "service/service.h"
#include "sql/translator.h"

namespace {

using namespace eq;

class Shell {
 public:
  /// Executes one ';'-terminated statement. Returns false on QUIT.
  bool Execute(const std::string& stmt) {
    std::string word = FirstWord(stmt);
    if (word.empty()) return true;
    if (word == "QUIT" || word == "EXIT") return false;
    if (word == "HELP") {
      Help();
    } else if (word == "CREATE" || word == "INDEX") {
      if (svc_) {
        std::printf(
            "error: the catalog is fixed once the service starts — declare "
            "tables and indexes before the first query\n");
      } else {
        Report(Staged(stmt, word == "CREATE" ? CreateTable(&ctx_, &db_, stmt)
                                             : Index(&ctx_, &db_, stmt)));
      }
    } else if (word == "INSERT") {
      if (svc_) {
        Report(LiveInsert(stmt));
      } else {
        Report(Staged(stmt, Insert(&ctx_, &db_, stmt)));
      }
    } else if (word == "DELETE" || word == "UPDATE") {
      if (svc_) {
        auto rows = svc_->ExecuteWrite(stmt);
        if (rows.ok()) {
          std::printf("%zu row(s) affected\n", *rows);
        } else {
          Report(rows.status());
        }
      } else {
        Report(Staged(stmt, Write(&ctx_, &db_, stmt)));
      }
    } else if (word == "SELECT") {
      Submit(client::Query::Sql(stmt));
    } else if (word == "IR") {
      Submit(client::Query::Ir(stmt.substr(stmt.find("IR") + 2)));
    } else if (word == "FLUSH") {
      EnsureStarted();
      svc_->FlushAll();
      std::printf("flushed; pending=%llu\n",
                  (unsigned long long)svc_->Metrics().pending);
    } else if (word == "TICK") {
      EnsureStarted();
      uint64_t t = 0;
      std::sscanf(stmt.c_str(), "%*s %llu", (unsigned long long*)&t);
      svc_->AdvanceTicks(t);
      std::printf("clock=%llu pending=%llu\n",
                  (unsigned long long)svc_->now_ticks(),
                  (unsigned long long)svc_->Metrics().pending);
    } else if (word == "TTL") {
      std::sscanf(stmt.c_str(), "%*s %llu", (unsigned long long*)&ttl_);
      std::printf("ttl=%llu ticks for subsequent queries\n",
                  (unsigned long long)ttl_);
    } else if (word == "STATUS") {
      EnsureStarted();
      std::printf("%s", svc_->Metrics().ToString().c_str());
    } else {
      std::printf("unknown statement '%s' (try HELP)\n", word.c_str());
    }
    return true;
  }

  /// Executes one '\'-prefixed observability command (whole line).
  void Command(const std::string& line) {
    std::istringstream in(line);
    std::string cmd, arg1, arg2;
    in >> cmd >> arg1 >> arg2;
    EnsureStarted();
    if (cmd == "\\metrics") {
      std::string format = arg1.empty() ? "prom" : arg1;
      std::string text;
      if (format == "prom") {
        text = service::MetricsToPrometheusText(svc_->Metrics());
      } else if (format == "json") {
        text = service::MetricsToJson(svc_->Metrics());
      } else {
        std::printf("usage: \\metrics [prom|json] [file]\n");
        return;
      }
      if (arg2.empty()) {
        std::printf("%s", text.c_str());
      } else {
        std::ofstream out(arg2);
        if (!out) {
          std::printf("error: cannot open %s\n", arg2.c_str());
          return;
        }
        out << text;
        std::printf("wrote %zu bytes of %s metrics to %s\n", text.size(),
                    format.c_str(), arg2.c_str());
      }
    } else if (cmd == "\\trace") {
      if (arg1.empty()) {
        std::printf("usage: \\trace <ticket-id>\n");
        return;
      }
      auto trace = svc_->Trace(std::strtoull(arg1.c_str(), nullptr, 10));
      if (trace.ok()) {
        std::printf("%s", trace->ToString().c_str());
      } else {
        Report(trace.status());
      }
    } else if (cmd == "\\state") {
      std::printf("%s", svc_->DumpState().ToString().c_str());
    } else {
      std::printf("unknown command '%s' (try \\metrics, \\trace <id>, "
                  "\\state)\n",
                  cmd.c_str());
    }
  }

 private:
  static std::string FirstWord(const std::string& s) {
    size_t i = 0;
    while (i < s.size() && std::isspace((unsigned char)s[i])) ++i;
    size_t j = i;
    while (j < s.size() && (std::isalpha((unsigned char)s[j]))) ++j;
    std::string w = s.substr(i, j - i);
    for (char& c : w) c = static_cast<char>(std::toupper((unsigned char)c));
    return w;
  }

  static void Report(const Status& st) {
    std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
  }

  void Help() {
    std::printf(
        "statements (terminate with ';'):\n"
        "  CREATE TABLE name (col TYPE, ...)   TYPE = INT | STR (pre-start)\n"
        "  INSERT name (value, ...)            value = 123 | 'text'\n"
        "  DELETE FROM name [WHERE col op lit [AND ...]]\n"
        "  UPDATE name SET col = lit [, ...] [WHERE ...]   op = = != < <= > >=\n"
        "      (ranges work on INT and STR alike; STR compares\n"
        "       lexicographically via the sorted dictionary)\n"
        "  INDEX name column                   (pre-start)\n"
        "  SELECT ... INTO ANSWER ... CHOOSE k   entangled SQL (paper §2.1)\n"
        "  IR {C} H :- B                         Datalog-style IR (§2.2)\n"
        "  TTL n | TICK n | FLUSH | STATUS | HELP | QUIT\n"
        "observability commands (whole line, no ';'):\n"
        "  \\metrics [prom|json] [file]   exporter output\n"
        "  \\trace <ticket-id>            lifecycle trace of one query\n"
        "  \\state                        pending queries, groups, lag\n");
  }

  /// Pre-start statements validate against the staging catalog and, on
  /// success, are recorded for replay inside the service bootstrap.
  Status Staged(const std::string& stmt, Status st) {
    if (st.ok()) boot_stmts_.push_back(stmt);
    return st;
  }

  /// Starts the CoordinationService, replaying the staged CREATE / INSERT
  /// / INDEX statements as its snapshot bootstrap. trace_all keeps every
  /// interactive query's lifecycle available to \trace.
  void EnsureStarted() {
    if (svc_) return;
    service::ServiceOptions opts;
    opts.num_shards = 2;
    opts.mode = engine::EvalMode::kIncremental;
    opts.max_delay_ticks = 1;
    opts.trace_all = true;
    std::vector<std::string> stmts = boot_stmts_;
    opts.bootstrap = [stmts](ir::QueryContext* ctx, db::Database* db) {
      for (const auto& s : stmts) {
        std::string word = FirstWord(s);
        Status st = word == "CREATE"   ? CreateTable(ctx, db, s)
                    : word == "INSERT" ? Insert(ctx, db, s)
                    : word == "INDEX"  ? Index(ctx, db, s)
                                       : Write(ctx, db, s);
        if (!st.ok()) {
          std::printf("bootstrap: %s\n", st.ToString().c_str());
        }
      }
    };
    svc_ = std::make_unique<service::CoordinationService>(opts);
    std::printf(
        "service started: %u shards, incremental evaluation, tracing all "
        "queries (catalog: %zu staged statement(s))\n",
        opts.num_shards, boot_stmts_.size());
  }

  static Status CreateTable(ir::QueryContext* /*ctx*/, db::Database* db,
                            const std::string& stmt) {
    // CREATE TABLE name ( col TYPE , ... )
    std::istringstream in(stmt);
    std::string kw1, kw2, name;
    in >> kw1 >> kw2 >> name;
    size_t open = stmt.find('(');
    size_t close = stmt.rfind(')');
    if (name.empty() || open == std::string::npos ||
        close == std::string::npos || close < open) {
      return Status::ParseError("usage: CREATE TABLE name (col TYPE, ...)");
    }
    // Strip a '(' glued to the name.
    if (size_t p = name.find('('); p != std::string::npos) {
      name = name.substr(0, p);
    }
    db::Schema schema;
    std::string cols = stmt.substr(open + 1, close - open - 1);
    std::istringstream cin2(cols);
    std::string piece;
    while (std::getline(cin2, piece, ',')) {
      std::istringstream pin(piece);
      std::string col, type;
      pin >> col >> type;
      for (char& c : type) c = static_cast<char>(std::toupper((unsigned char)c));
      if (col.empty() || (type != "INT" && type != "STR")) {
        return Status::ParseError("bad column spec '" + piece + "'");
      }
      schema.columns.push_back(db::Column{
          col, type == "INT" ? ir::ValueType::kInt : ir::ValueType::kString});
    }
    if (schema.columns.empty()) {
      return Status::ParseError("table needs at least one column");
    }
    return db->CreateTable(name, std::move(schema));
  }

  /// Parses "INSERT name (v1, v2, ...)" into the table name and a row,
  /// interning string cells through `intern`.
  static Status ParseInsert(const std::string& stmt, StringInterner* intern,
                            std::string* name, db::Row* row) {
    std::istringstream in(stmt);
    std::string kw;
    in >> kw >> *name;
    size_t open = stmt.find('(');
    size_t close = stmt.rfind(')');
    if (name->empty() || open == std::string::npos ||
        close == std::string::npos) {
      return Status::ParseError("usage: INSERT name (v1, v2, ...)");
    }
    if (size_t p = name->find('('); p != std::string::npos) {
      *name = name->substr(0, p);
    }
    std::string vals = stmt.substr(open + 1, close - open - 1);
    std::istringstream vin(vals);
    std::string piece;
    while (std::getline(vin, piece, ',')) {
      // Trim.
      size_t b = piece.find_first_not_of(" \t\n");
      size_t e = piece.find_last_not_of(" \t\n");
      if (b == std::string::npos) {
        return Status::ParseError("empty value");
      }
      piece = piece.substr(b, e - b + 1);
      if (piece.front() == '\'') {
        if (piece.size() < 2 || piece.back() != '\'') {
          return Status::ParseError("unterminated string " + piece);
        }
        row->push_back(
            ir::Value::Str(intern->Intern(piece.substr(1, piece.size() - 2))));
      } else {
        row->push_back(ir::Value::Int(std::atoll(piece.c_str())));
      }
    }
    return Status::OK();
  }

  static Status Insert(ir::QueryContext* ctx, db::Database* db,
                       const std::string& stmt) {
    std::string name;
    db::Row row;
    EQ_RETURN_NOT_OK(ParseInsert(stmt, &ctx->interner(), &name, &row));
    return db->Insert(name, std::move(row));
  }

  /// Post-start INSERT: through the versioned write path, waking exactly
  /// the pending queries that read the touched relation.
  Status LiveInsert(const std::string& stmt) {
    std::string name;
    db::Row row;
    EQ_RETURN_NOT_OK(ParseInsert(stmt, &svc_->interner(), &name, &row));
    return svc_->ApplyWrite(name, std::move(row));
  }

  /// SQL DELETE/UPDATE against the staging catalog (pre-start only): the
  /// statement is resolved and type-checked through the same translator
  /// the service uses, then applied to the staging database.
  static Status Write(ir::QueryContext* ctx, db::Database* db,
                      const std::string& stmt) {
    sql::Translator tr(ctx, db);
    auto w = tr.TranslateWriteSql(stmt);
    if (!w.ok()) return w.status();
    db::Table* table = db->GetTable(w->table());
    if (table == nullptr) return Status::NotFound("no table " + w->table());
    size_t rows = 0;
    if (w->kind() == db::Storage::TableWrite::Kind::kDelete) {
      EQ_RETURN_NOT_OK(table->DeleteWhere(w->write.pred, &rows));
    } else {
      EQ_RETURN_NOT_OK(table->UpdateWhere(w->write.pred, w->write.sets, &rows));
    }
    std::printf("%zu row(s) affected\n", rows);
    return Status::OK();
  }

  static Status Index(ir::QueryContext* /*ctx*/, db::Database* db,
                      const std::string& stmt) {
    std::istringstream in(stmt);
    std::string kw, name, col;
    in >> kw >> name >> col;
    db::Table* table = db->GetTable(name);
    if (table == nullptr) return Status::NotFound("no table " + name);
    int idx = table->schema().ColumnIndex(col);
    if (idx < 0) return Status::NotFound("no column " + col);
    return table->BuildIndex(static_cast<size_t>(idx));
  }

  void Submit(client::Query query) {
    EnsureStarted();
    service::SubmitOptions opts;
    opts.ttl_ticks = ttl_;
    opts.callback = [](service::TicketId id,
                       const service::ServiceOutcome& outcome) {
      if (outcome.state == service::ServiceOutcome::State::kAnswered) {
        for (const auto& t : outcome.tuples) {
          std::printf("[t%llu] answered: %s\n", (unsigned long long)id,
                      t.c_str());
        }
      } else {
        std::printf("[t%llu] failed: %s\n", (unsigned long long)id,
                    outcome.status.ToString().c_str());
      }
    };
    auto ticket = svc_->Submit(std::move(query), std::move(opts));
    if (!ticket.ok()) {
      std::printf("rejected: %s\n", ticket.status().ToString().c_str());
      return;
    }
    if (!ticket->Done()) {
      std::printf("[t%llu] pending (awaiting coordination partners)\n",
                  (unsigned long long)ticket->id());
    }
  }

  /// Staging catalog for pre-start statements: validates DDL/DML up front
  /// so errors surface at the prompt, not inside the bootstrap replay.
  ir::QueryContext ctx_;
  db::Database db_{&ctx_.interner()};
  std::vector<std::string> boot_stmts_;

  std::unique_ptr<service::CoordinationService> svc_;
  uint64_t ttl_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::ifstream file;
  std::istream* in = &std::cin;
  bool interactive = true;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    in = &file;
    interactive = false;
  }

  Shell shell;
  if (interactive) {
    std::printf("entangled-queries shell — HELP; for commands\n");
  }
  std::string buffer, line;
  while (std::getline(*in, line)) {
    // Strip -- comments.
    if (size_t c = line.find("--"); c != std::string::npos) {
      line = line.substr(0, c);
    }
    // '\'-prefixed lines are immediate observability commands.
    size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '\\') {
      shell.Command(line.substr(first));
      continue;
    }
    buffer += line + "\n";
    size_t semi;
    while ((semi = buffer.find(';')) != std::string::npos) {
      std::string stmt = buffer.substr(0, semi);
      buffer = buffer.substr(semi + 1);
      if (!shell.Execute(stmt)) return 0;
    }
  }
  return 0;
}
