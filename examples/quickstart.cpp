// Quickstart: the paper's introduction scenario, end to end.
//
// Kramer wants to fly to Paris on the same flight as Jerry; Jerry agrees,
// but only on United. Both submit *entangled SQL* — no out-of-band
// communication, no group-booking protocol. The engine matches the two
// queries statically, merges them into one combined query ("find a United
// flight to Paris"), evaluates it against the flight database, and hands
// each user his half of the coordinated answer.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "db/database.h"
#include "engine/engine.h"
#include "ir/query.h"
#include "sql/translator.h"

using namespace eq;

int main() {
  // ---------------------------------------------------------------- data --
  // The Figure 1 (a) flight database.
  ir::QueryContext ctx;
  db::Database db(&ctx.interner());
  db.CreateTable("Flights", {{"fno", ir::ValueType::kInt},
                             {"dest", ir::ValueType::kString}});
  db.CreateTable("Airlines", {{"fno", ir::ValueType::kInt},
                              {"airline", ir::ValueType::kString}});
  auto S = [&](const char* s) { return ir::Value::Str(ctx.Intern(s)); };
  db.Insert("Flights", {ir::Value::Int(122), S("Paris")});
  db.Insert("Flights", {ir::Value::Int(123), S("Paris")});
  db.Insert("Flights", {ir::Value::Int(134), S("Paris")});
  db.Insert("Flights", {ir::Value::Int(136), S("Rome")});
  db.Insert("Airlines", {ir::Value::Int(122), S("United")});
  db.Insert("Airlines", {ir::Value::Int(123), S("United")});
  db.Insert("Airlines", {ir::Value::Int(134), S("Lufthansa")});
  db.Insert("Airlines", {ir::Value::Int(136), S("Alitalia")});

  // -------------------------------------------------------------- queries --
  const char* kramer_sql =
      "SELECT 'Kramer', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') "
      "AND ('Jerry', fno) IN ANSWER Reservation "
      "CHOOSE 1";
  const char* jerry_sql =
      "SELECT 'Jerry', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights F, Airlines A WHERE "
      "F.dest='Paris' AND F.fno = A.fno AND A.airline = 'United') "
      "AND ('Kramer', fno) IN ANSWER Reservation "
      "CHOOSE 1";

  sql::Translator translator(&ctx, &db);
  auto kramer = translator.TranslateSql(kramer_sql);
  auto jerry = translator.TranslateSql(jerry_sql);
  if (!kramer.ok() || !jerry.ok()) {
    std::fprintf(stderr, "translation failed: %s\n",
                 (!kramer.ok() ? kramer.status() : jerry.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  std::printf("Kramer's query (IR):  %s\n", kramer->ToString(ctx).c_str());
  std::printf("Jerry's  query (IR):  %s\n\n", jerry->ToString(ctx).c_str());

  // --------------------------------------------------------------- engine --
  engine::CoordinationEngine engine(&ctx, &db,
                                    {.mode = engine::EvalMode::kIncremental});
  engine.SetCallback([&](ir::QueryId id, const engine::QueryOutcome& outcome) {
    if (outcome.state == engine::QueryOutcome::State::kAnswered) {
      for (const auto& tuple : outcome.tuples) {
        std::printf("  -> query %u answered: %s\n", id,
                    tuple.ToString(ctx.interner()).c_str());
      }
    } else {
      std::printf("  -> query %u failed: %s\n", id,
                  outcome.status.ToString().c_str());
    }
  });

  std::printf("Submitting Kramer's query... (he waits for a partner)\n");
  auto k_id = engine.Submit(std::move(kramer).value());
  std::printf("Submitting Jerry's query...  (coordination fires now)\n");
  auto j_id = engine.Submit(std::move(jerry).value());
  if (!k_id.ok() || !j_id.ok()) return 1;

  const auto& ko = engine.outcome(*k_id);
  const auto& jo = engine.outcome(*j_id);
  if (ko.state != engine::QueryOutcome::State::kAnswered) {
    std::fprintf(stderr, "expected coordination to succeed\n");
    return 1;
  }
  std::printf(
      "\nKramer and Jerry were booked on the same United flight (%lld).\n",
      static_cast<long long>(ko.tuples[0].args[1].AsInt()));
  std::printf("Answer tuples never persisted; the ANSWER relation is only a\n"
              "shared name that lets independent queries entangle (§2.1).\n");
  return jo.state == engine::QueryOutcome::State::kAnswered ? 0 : 1;
}
