// Service mode: the quickstart scenario through the sharded front-end,
// driven by the typed client API.
//
// Instead of driving a CoordinationEngine directly (examples/quickstart),
// clients open a Session over a CoordinationService and submit typed
// eq::client::Query values in any dialect — IR text, entangled SQL, or a
// QueryBuilder program (no parsing at all). A router fingerprints each
// query's translated entangled-relation signature and hands it to one of N
// shard threads, each owning a private engine + database snapshot. Clients
// get a future-style Ticket; coordination, staleness and cancellation all
// happen asynchronously behind it.
//
// Build & run:   ./build/examples/coordination_service

#include "db/database.h"
#include <chrono>
#include <cstdio>
#include <thread>

#include "client/session.h"

using namespace eq;

int main() {
  // The bootstrap runs ONCE, into the shared versioned storage; every
  // shard (and the edge catalog used for SQL translation) then shares the
  // same immutable snapshot of the Figure 1 (a) flight database.
  service::ServiceOptions opts;
  opts.num_shards = 4;
  opts.mode = engine::EvalMode::kIncremental;  // answer on partner arrival
  opts.tick_interval = std::chrono::milliseconds(10);  // staleness ticker
  // Slow-query log: any query resolving slower than 1ms gets its full
  // lifecycle trace handed to the sink (setting a threshold implies
  // trace_all, so every query's trace is available). The Kyoto pair below
  // pends on data for several ms, so it fires the sink.
  opts.slow_query_threshold_ms = 1.0;
  opts.slow_query_sink = [](const service::QueryTrace& trace) {
    std::printf("  [slow-query log] ticket %llu exceeded 1ms:\n%s",
                (unsigned long long)trace.ticket, trace.ToString().c_str());
  };
  opts.bootstrap = [](ir::QueryContext* ctx, db::Database* db) {
    db->CreateTable("F", {{"fno", ir::ValueType::kInt},
                          {"dest", ir::ValueType::kString}});
    db->CreateTable("A", {{"fno", ir::ValueType::kInt},
                          {"airline", ir::ValueType::kString}});
    auto S = [&](const char* s) { return ir::Value::Str(ctx->Intern(s)); };
    db->Insert("F", {ir::Value::Int(122), S("Paris")});
    db->Insert("F", {ir::Value::Int(123), S("Paris")});
    db->Insert("F", {ir::Value::Int(134), S("Paris")});
    db->Insert("F", {ir::Value::Int(136), S("Rome")});
    db->Insert("A", {ir::Value::Int(122), S("United")});
    db->Insert("A", {ir::Value::Int(123), S("United")});
    db->Insert("A", {ir::Value::Int(134), S("Lufthansa")});
    db->Insert("A", {ir::Value::Int(136), S("Alitalia")});
  };
  service::CoordinationService svc(opts);

  // A session with defaults: every query from this client carries a 500-tick
  // TTL and prefers the highest flight number unless it says otherwise.
  client::Session session(
      &svc, {.default_ttl_ticks = 500,
             .default_preference = client::PreferenceSpec::MaximizeArg(1)});

  std::printf("Kramer submits IR text (and waits for a partner)...\n");
  auto kramer = session.SubmitIr(
      "kramer: {R(Jerry, x)} R(Kramer, x) :- F(x, Paris)",
      {.callback = [](service::TicketId id,
                      const service::ServiceOutcome& outcome) {
        std::printf("  [callback] ticket %llu resolved: %s\n",
                    (unsigned long long)id,
                    outcome.state == service::ServiceOutcome::State::kAnswered
                        ? outcome.tuples[0].c_str()
                        : outcome.status.ToString().c_str());
      }});

  std::printf("Jerry submits a builder program (no parsing on its path)...\n");
  auto jerry = session.Submit(client::QueryBuilder()
                                  .Label("jerry")
                                  .Postcondition("R", {client::Str("Kramer"),
                                                       client::Var("y")})
                                  .Head("R", {client::Str("Jerry"),
                                              client::Var("y")})
                                  .Body("F", {client::Var("y"),
                                              client::Str("Paris")})
                                  .Body("A", {client::Var("y"),
                                              client::Str("United")})
                                  .Build());
  if (!kramer.ok() || !jerry.ok()) {
    std::fprintf(stderr, "submission failed: %s / %s\n",
                 kramer.status().ToString().c_str(),
                 jerry.status().ToString().c_str());
    return 1;
  }

  const auto& ko = kramer->Wait();
  const auto& jo = jerry->Wait();
  if (ko.state != service::ServiceOutcome::State::kAnswered ||
      jo.state != service::ServiceOutcome::State::kAnswered) {
    std::fprintf(stderr, "expected coordination to succeed: %s / %s\n",
                 ko.status.ToString().c_str(), jo.status.ToString().c_str());
    return 1;
  }
  std::printf("\nCoordinated booking (session prefers the latest flight):\n"
              "  Kramer -> %s\n  Jerry  -> %s\n",
              ko.tuples[0].c_str(), jo.tuples[0].c_str());

  // Live write ingestion: a brand-new Vienna flight lands as a CoW write
  // (only the touched table is copied; a new snapshot version publishes),
  // and a pair coordinating on it answers after the shards refresh.
  svc.ApplyWrite("F", {ir::Value::Int(800),
                       ir::Value::Str(svc.interner().Intern("Vienna"))});
  std::printf("\nWrote flight 800 to Vienna (storage now at version %llu)\n",
              (unsigned long long)svc.storage().version());
  auto elaine = session.SubmitIr(
      "elaine: {V(Puddy, v)} V(Elaine, v) :- F(v, Vienna)");
  auto puddy = session.SubmitIr(
      "puddy: {V(Elaine, w)} V(Puddy, w) :- F(w, Vienna)");
  if (elaine.ok() && puddy.ok()) {
    std::printf("Vienna pair coordinated on the written row:\n"
                "  Elaine -> %s\n  Puddy  -> %s\n",
                elaine->Wait().tuples[0].c_str(),
                puddy->Wait().tuples[0].c_str());
  }

  // Reactive write pipeline: the pair below wants Kyoto, which no flight
  // serves yet — both queries match each other and sit PENDING on data.
  // The ApplyWrite alone answers them: the service posts a WriteNotify to
  // exactly the shard whose pending partition reads F, that shard adopts
  // the fresh snapshot and re-evaluates just that partition. No flush, no
  // tick, no further submission.
  std::printf("\nGeorge and Susan want Kyoto; no such flight exists yet...\n");
  auto george = session.SubmitIr(
      "george: {K(Susan, g)} K(George, g) :- F(g, Kyoto)");
  auto susan = session.SubmitIr(
      "susan: {K(George, s)} K(Susan, s) :- F(s, Kyoto)");
  if (george.ok() && susan.ok()) {
    // Let the pair demonstrably reach the pending state (matched, no
    // data) before writing, so the answer below provably comes from the
    // write-triggered wake-up and not the per-submit snapshot refresh.
    while (svc.Metrics().pending < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::printf("  pending: george done=%d susan done=%d\n",
                george->Done() ? 1 : 0, susan->Done() ? 1 : 0);
    // Introspection while they are stuck: DumpState names the pending
    // queries, their entangled group, and each shard's snapshot lag.
    std::printf("%s", svc.DumpState().ToString().c_str());
    // Let the pair dwell past the 1ms slow-query threshold so the
    // resolution below demonstrably fires the sink.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    svc.ApplyWrite("F", {ir::Value::Int(900),
                         ir::Value::Str(svc.interner().Intern("Kyoto"))});
    std::printf("Wrote flight 900 to Kyoto — the write wakes them:\n"
                "  George -> %s\n  Susan  -> %s\n",
                george->Wait().tuples[0].c_str(),
                susan->Wait().tuples[0].c_str());
  }

  // Deletes and updates are first-class writes too (CoW: published
  // snapshots keep the rows they captured). Reroute 136 away from Rome and
  // retract the Vienna flight wholesale.
  svc.ApplyUpdate("F", 0, ir::Value::Int(136),
                  {ir::Value::Int(136),
                   ir::Value::Str(svc.interner().Intern("Naples"))});
  size_t removed = 0;
  svc.ApplyDelete("F", 1, ir::Value::Str(svc.interner().Intern("Vienna")),
                  &removed);
  std::printf("\nRerouted flight 136 to Naples; retracted %zu Vienna row(s); "
              "storage at version %llu\n",
              removed, (unsigned long long)svc.storage().version());

  // A third user books via a batch, changes their mind, and cancels.
  auto batch = session.SubmitBatch(
      {client::Query::Ir("newman: {R(Ghost, z)} R(Newman, z) :- F(z, Rome)")});
  if (batch.size() == 1 && batch[0].ok()) {
    session.Cancel(*batch[0]);
    (*batch[0]).Wait();
    std::printf("\nNewman cancelled: %s\n",
                (*batch[0]).outcome().status.ToString().c_str());
  }

  std::printf("\n%s", svc.Metrics().ToString().c_str());
  return 0;
}
