// Service mode: the quickstart scenario through the sharded front-end.
//
// Instead of driving a CoordinationEngine directly (examples/quickstart),
// clients submit entangled-query text to a CoordinationService: a router
// fingerprints each query's entangled relations and hands it to one of N
// shard threads, each owning a private engine + database snapshot. Clients
// get a future-style Ticket; coordination, staleness and cancellation all
// happen asynchronously behind it.
//
// Build & run:   ./build/examples/coordination_service

#include <chrono>
#include <cstdio>

#include "service/service.h"

using namespace eq;

int main() {
  // Each shard bootstraps an identical snapshot of the Figure 1 (a) flight
  // database against its own private interner.
  service::ServiceOptions opts;
  opts.num_shards = 4;
  opts.mode = engine::EvalMode::kIncremental;  // answer on partner arrival
  opts.tick_interval = std::chrono::milliseconds(10);  // staleness ticker
  opts.bootstrap = [](ir::QueryContext* ctx, db::Database* db) {
    db->CreateTable("F", {{"fno", ir::ValueType::kInt},
                          {"dest", ir::ValueType::kString}});
    db->CreateTable("A", {{"fno", ir::ValueType::kInt},
                          {"airline", ir::ValueType::kString}});
    auto S = [&](const char* s) { return ir::Value::Str(ctx->Intern(s)); };
    db->Insert("F", {ir::Value::Int(122), S("Paris")});
    db->Insert("F", {ir::Value::Int(123), S("Paris")});
    db->Insert("F", {ir::Value::Int(134), S("Paris")});
    db->Insert("F", {ir::Value::Int(136), S("Rome")});
    db->Insert("A", {ir::Value::Int(122), S("United")});
    db->Insert("A", {ir::Value::Int(123), S("United")});
    db->Insert("A", {ir::Value::Int(134), S("Lufthansa")});
    db->Insert("A", {ir::Value::Int(136), S("Alitalia")});
  };
  service::CoordinationService svc(opts);

  std::printf("Kramer submits (and waits for a partner)...\n");
  auto kramer = svc.SubmitAsync(
      "kramer: {R(Jerry, x)} R(Kramer, x) :- F(x, Paris)",
      /*ttl_ticks=*/500,
      [](service::TicketId id, const service::ServiceOutcome& outcome) {
        std::printf("  [callback] ticket %llu resolved: %s\n",
                    (unsigned long long)id,
                    outcome.state == service::ServiceOutcome::State::kAnswered
                        ? outcome.tuples[0].c_str()
                        : outcome.status.ToString().c_str());
      });
  std::printf("Jerry submits (coordination fires on his shard)...\n");
  auto jerry = svc.SubmitAsync(
      "jerry: {R(Kramer, y)} R(Jerry, y) :- F(y, Paris), A(y, United)",
      /*ttl_ticks=*/500);
  if (!kramer.ok() || !jerry.ok()) {
    std::fprintf(stderr, "submission failed\n");
    return 1;
  }

  const auto& ko = kramer->Wait();
  const auto& jo = jerry->Wait();
  if (ko.state != service::ServiceOutcome::State::kAnswered ||
      jo.state != service::ServiceOutcome::State::kAnswered) {
    std::fprintf(stderr, "expected coordination to succeed: %s / %s\n",
                 ko.status.ToString().c_str(), jo.status.ToString().c_str());
    return 1;
  }
  std::printf("\nCoordinated booking:\n  Kramer -> %s\n  Jerry  -> %s\n",
              ko.tuples[0].c_str(), jo.tuples[0].c_str());

  // A third user books, changes their mind, and cancels.
  auto newman = svc.SubmitAsync(
      "newman: {R(Ghost, z)} R(Newman, z) :- F(z, Rome)");
  if (newman.ok()) {
    svc.Cancel(*newman);
    newman->Wait();
    std::printf("\nNewman cancelled: %s\n",
                newman->outcome().status.ToString().c_str());
  }

  std::printf("\n%s", svc.Metrics().ToString().c_str());
  return 0;
}
