// Travel booking at social-network scale.
//
// A stream of users submits coordination requests against a synthetic
// Slashdot-scale social graph (§5.2): pairs of friends who want to fly
// somewhere together, groups of three, and the occasional loner whose
// partner never shows up. The example demonstrates the full asynchronous
// life cycle of §5.1: callbacks, pending queries, staleness timeouts, and
// the incremental evaluation mode answering partitions the moment they
// complete.
//
// Build & run:   ./build/examples/travel_booking

#include "db/database.h"
#include <cstdio>

#include "engine/engine.h"
#include "util/rng.h"
#include "workload/flight_workload.h"
#include "workload/social_graph.h"

using namespace eq;

int main() {
  // A small city-heavy graph so the example runs instantly.
  workload::SocialGraphOptions gopts;
  gopts.num_users = 2000;
  gopts.num_airports = 12;
  gopts.seed = 2026;
  workload::SocialGraph graph = workload::SocialGraph::Generate(gopts);
  std::printf("social graph: %u users, %zu friendships, %u airports\n",
              graph.num_users(), graph.num_edges(), graph.num_airports());

  ir::QueryContext ctx;
  workload::FlightWorkload wl(&graph, &ctx);
  db::Database db(&ctx.interner());
  if (!wl.PopulateDatabase(&db).ok()) return 1;

  engine::CoordinationEngine engine(&ctx, &db,
                                    {.mode = engine::EvalMode::kIncremental});

  int answered = 0, timed_out = 0, failed = 0;
  engine.SetCallback([&](ir::QueryId, const engine::QueryOutcome& outcome) {
    switch (outcome.state) {
      case engine::QueryOutcome::State::kAnswered:
        ++answered;
        break;
      case engine::QueryOutcome::State::kFailed:
        if (outcome.status.code() == StatusCode::kTimeout) {
          ++timed_out;
        } else {
          ++failed;
        }
        break;
      default:
        break;
    }
  });

  Rng rng(7);

  // --- scene 1: a pair of friends plans a trip -----------------------------
  std::printf("\n[scene 1] two friends book a joint trip\n");
  auto pair = wl.TwoWayBestCase(1, &rng);
  auto first = engine.Submit(std::move(pair[0]), /*ttl_ticks=*/100);
  std::printf("  first traveller submitted; pending=%zu (waiting)\n",
              engine.pending_count());
  auto second = engine.Submit(std::move(pair[1]), /*ttl_ticks=*/100);
  if (first.ok() && second.ok()) {
    const auto& outcome = engine.outcome(*first);
    if (outcome.state == engine::QueryOutcome::State::kAnswered) {
      std::printf("  coordinated: %s and partner share %s\n",
                  outcome.tuples[0].args[0].ToString(ctx.interner()).c_str(),
                  outcome.tuples[0].args[1].ToString(ctx.interner()).c_str());
    } else {
      std::printf("  pair could not coordinate (%s) — e.g. different "
                  "hometowns\n",
                  outcome.status.ToString().c_str());
    }
  }

  // --- scene 2: three friends, a triangle ---------------------------------
  std::printf("\n[scene 2] a triangle of friends books together\n");
  for (int attempt = 0; attempt < 20; ++attempt) {
    auto triple = wl.ThreeWay(1, &rng);
    if (triple.size() != 3) continue;
    std::vector<ir::QueryId> ids;
    for (auto& q : triple) {
      auto r = engine.Submit(std::move(q), /*ttl_ticks=*/100);
      if (r.ok()) ids.push_back(*r);
    }
    if (ids.size() == 3 &&
        engine.outcome(ids[0]).state ==
            engine::QueryOutcome::State::kAnswered) {
      std::printf("  all three fly to %s\n",
                  engine.outcome(ids[0])
                      .tuples[0]
                      .args[1]
                      .ToString(ctx.interner())
                      .c_str());
      break;
    }
  }

  // --- scene 3: a flood of requests, some doomed ---------------------------
  std::printf("\n[scene 3] 400 queries stream in (some partners never "
              "arrive)\n");
  auto stream = wl.TwoWayBestCase(100, &rng);
  // Drop every 4th query: its partner will wait in vain, then go stale.
  size_t submitted = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    if (i % 4 == 0) continue;
    auto r = engine.Submit(std::move(stream[i]), /*ttl_ticks=*/50);
    if (r.ok()) ++submitted;
  }
  std::printf("  submitted %zu queries; pending=%zu\n", submitted,
              engine.pending_count());

  // The clock advances; stale queries expire (§5.1 staleness).
  engine.AdvanceTime(engine.now() + 60);
  std::printf("  after timeout tick: pending=%zu, expired so far=%llu\n",
              engine.pending_count(),
              static_cast<unsigned long long>(engine.metrics().expired));

  // A final set-at-a-time flush resolves any leftovers.
  engine.Flush().ok();

  const auto& m = engine.metrics();
  std::printf("\nsummary: answered=%d timed_out=%d failed=%d "
              "(unsafe rejections=%llu)\n",
              answered, timed_out, failed,
              static_cast<unsigned long long>(m.rejected_unsafe));
  std::printf("match time %.2f ms, combined-query time %.2f ms, "
              "%llu combined queries\n",
              m.match_seconds * 1e3, m.db_seconds * 1e3,
              static_cast<unsigned long long>(m.combined_queries));
  return answered > 0 ? 0 : 1;
}
