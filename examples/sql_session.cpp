// Entangled SQL through the sharded service: the paper's §2.1 surface
// syntax end to end — translation against the edge catalog, relation-
// fingerprint routing, per-shard re-translation, coordination, and
// preference-ranked outcomes (§6).
//
// Kramer books "the same flight as Jerry"; Jerry books "the same flight as
// Kramer, on United". Both speak SQL. A third wheel demonstrates a
// synchronous translation error (unknown table — caught before routing).
//
// Build & run:   ./build/examples/sql_session

#include "db/database.h"
#include <cstdio>

#include "client/session.h"

using namespace eq;

int main() {
  service::ServiceOptions opts;
  opts.num_shards = 2;
  opts.mode = engine::EvalMode::kIncremental;
  opts.bootstrap = [](ir::QueryContext* ctx, db::Database* db) {
    db->CreateTable("Flights", {{"fno", ir::ValueType::kInt},
                                {"dest", ir::ValueType::kString}});
    db->CreateTable("Airlines", {{"fno", ir::ValueType::kInt},
                                 {"airline", ir::ValueType::kString}});
    auto S = [&](const char* s) { return ir::Value::Str(ctx->Intern(s)); };
    db->Insert("Flights", {ir::Value::Int(122), S("Paris")});
    db->Insert("Flights", {ir::Value::Int(123), S("Paris")});
    db->Insert("Flights", {ir::Value::Int(134), S("Paris")});
    db->Insert("Airlines", {ir::Value::Int(122), S("United")});
    db->Insert("Airlines", {ir::Value::Int(123), S("United")});
    db->Insert("Airlines", {ir::Value::Int(134), S("Lufthansa")});
  };
  service::CoordinationService svc(opts);
  client::Session session(&svc);

  // Per-query preference: Kramer wants the latest flight; ranked sums
  // decide (§6), so the pair lands on the highest United flight.
  service::SubmitOptions prefer_late;
  prefer_late.preference = client::PreferenceSpec::MaximizeArg(1);

  auto kramer = session.SubmitSql(
      "SELECT 'Kramer', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') "
      "AND ('Jerry', fno) IN ANSWER Reservation "
      "CHOOSE 1",
      prefer_late);
  auto jerry = session.SubmitSql(
      "SELECT 'Jerry', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights F, Airlines A "
      "              WHERE F.dest='Paris' AND F.fno = A.fno "
      "              AND A.airline = 'United') "
      "AND ('Kramer', fno) IN ANSWER Reservation "
      "CHOOSE 1");
  if (!kramer.ok() || !jerry.ok()) {
    std::fprintf(stderr, "submission failed: %s / %s\n",
                 kramer.status().ToString().c_str(),
                 jerry.status().ToString().c_str());
    return 1;
  }

  const auto& ko = kramer->Wait();
  const auto& jo = jerry->Wait();
  if (ko.state != service::ServiceOutcome::State::kAnswered) {
    std::fprintf(stderr, "coordination failed: %s\n",
                 ko.status.ToString().c_str());
    return 1;
  }
  std::printf("Coordinated SQL booking:\n  Kramer -> %s\n  Jerry  -> %s\n",
              ko.tuples[0].c_str(), jo.tuples[0].c_str());

  // The write dialect: Elaine and Puddy wait for a Kyoto flight that does
  // not exist yet; one SQL UPDATE reroutes flight 134 and the pending pair
  // is answered by the write alone (edge translation → storage predicate
  // matching → write-triggered wake-up).
  auto elaine = session.SubmitSql(
      "SELECT 'Elaine', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Kyoto') "
      "AND ('Puddy', fno) IN ANSWER Reservation CHOOSE 1");
  auto puddy = session.SubmitSql(
      "SELECT 'Puddy', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Kyoto') "
      "AND ('Elaine', fno) IN ANSWER Reservation CHOOSE 1");
  auto rerouted =
      session.ExecuteWrite("UPDATE Flights SET dest = 'Kyoto' WHERE fno = 134");
  if (!elaine.ok() || !puddy.ok() || !rerouted.ok()) {
    const Status& failed = !elaine.ok()   ? elaine.status()
                           : !puddy.ok() ? puddy.status()
                                         : rerouted.status();
    std::fprintf(stderr, "write-path demo failed: %s\n",
                 failed.ToString().c_str());
    return 1;
  }
  const auto& eo = elaine->Wait();
  const auto& po = puddy->Wait();
  if (eo.state != service::ServiceOutcome::State::kAnswered ||
      po.state != service::ServiceOutcome::State::kAnswered) {
    const Status& failed =
        eo.state != service::ServiceOutcome::State::kAnswered ? eo.status
                                                              : po.status;
    std::fprintf(stderr, "write-path coordination failed: %s\n",
                 failed.ToString().c_str());
    return 1;
  }
  std::printf("\nUPDATE rerouted %zu flight(s) to Kyoto; the write woke:\n"
              "  Elaine -> %s\n  Puddy  -> %s\n",
              *rerouted, eo.tuples[0].c_str(), po.tuples[0].c_str());

  // DELETE with a predicate: retract every remaining Paris flight below
  // 130 (CoW — snapshots already adopted by in-flight rounds keep them).
  auto dropped = session.ExecuteWrite(
      "DELETE FROM Flights WHERE dest = 'Paris' AND fno < 130");
  if (!dropped.ok()) {
    std::fprintf(stderr, "delete failed: %s\n",
                 dropped.status().ToString().c_str());
    return 1;
  }
  std::printf("DELETE retracted %zu Paris flight(s) below 130\n", *dropped);

  // String ranges are lexicographic: interned destinations compare through
  // the storage's sorted dictionary, so `dest < 'M'` retracts Kyoto (and
  // would retract Lisbon) while leaving Paris alone.
  auto early = session.ExecuteWrite("DELETE FROM Flights WHERE dest < 'M'");
  if (!early.ok()) {
    std::fprintf(stderr, "string-range delete failed: %s\n",
                 early.status().ToString().c_str());
    return 1;
  }
  std::printf("DELETE retracted %zu flight(s) with dest < 'M'\n", *early);

  // Translation errors are synchronous: the edge catalog has no `Trains`
  // (for writes exactly like for queries).
  auto bad = session.SubmitSql(
      "SELECT 'George', tno INTO ANSWER Reservation "
      "WHERE tno IN (SELECT tno FROM Trains) CHOOSE 1");
  std::printf("\nGeorge's query was rejected before routing:\n  %s\n",
              bad.status().ToString().c_str());
  auto bad_write = session.ExecuteWrite("DELETE FROM Trains WHERE tno = 1");
  std::printf("George's DELETE was rejected at the edge catalog too:\n  %s\n",
              bad_write.status().ToString().c_str());
  return bad.ok() || bad_write.ok() ? 1 : 0;
}
