// MMO raid matchmaking: coordination with unknown partners.
//
// "In MMO games, coordination partners may be unknown and their identities
// irrelevant" (§1.1). A tank queues for a dungeon with *any* healer; a
// healer queues for the same dungeon with any tank. Neither names the
// other — the coordination partner is designated implicitly through the
// desired shared outcome, exactly the paper's deliberate design choice.
//
// The example also shows what the safety condition does for matchmaking
// fairness: once a tank↔healer pair is waiting, a second query that would
// make a pending request ambiguous is refused rather than silently
// stealing the match.
//
// Build & run:   ./build/examples/mmo_raid

#include <cstdio>

#include "db/database.h"
#include "engine/engine.h"
#include "ir/parser.h"

using namespace eq;

int main() {
  ir::QueryContext ctx;
  db::Database db(&ctx.interner());

  // Players(name, class, level).
  db.CreateTable("Players", {{"name", ir::ValueType::kString},
                             {"class", ir::ValueType::kString},
                             {"level", ir::ValueType::kInt}});
  auto S = [&](const char* s) { return ir::Value::Str(ctx.Intern(s)); };
  struct P {
    const char* name;
    const char* cls;
    int level;
  };
  for (const P& p : std::initializer_list<P>{
           {"Ragnar", "Tank", 58},
           {"Mercy", "Healer", 60},
           {"Lowheal", "Healer", 12},  // too low for the raid
           {"Zapp", "DPS", 55},
           {"Kron", "Tank", 44},
       }) {
    db.Insert("Players", {S(p.name), S(p.cls), ir::Value::Int(p.level)});
  }

  engine::CoordinationEngine engine(&ctx, &db,
                                    {.mode = engine::EvalMode::kIncremental});
  engine.SetCallback([&](ir::QueryId id, const engine::QueryOutcome& o) {
    if (o.state == engine::QueryOutcome::State::kAnswered) {
      for (const auto& t : o.tuples) {
        std::printf("  party slot filled: %s\n",
                    t.ToString(ctx.interner()).c_str());
      }
    } else {
      std::printf("  request %u resolved without a party: %s\n", id,
                  o.status.ToString().c_str());
    }
  });

  ir::Parser parser(&ctx);
  auto submit = [&](const char* who, const char* text) {
    std::printf("%s queues:\n  %s\n", who, text);
    auto q = parser.ParseQuery(text);
    if (!q.ok()) {
      std::fprintf(stderr, "parse error: %s\n", q.status().ToString().c_str());
      return;
    }
    auto r = engine.Submit(std::move(q).value(), /*ttl_ticks=*/30);
    if (!r.ok()) {
      std::printf("  (queue refused: %s)\n", r.status().ToString().c_str());
    }
  };

  // Ragnar the tank queues for Molten Depths with ANY healer of level >= 40.
  // He does not know who will answer — the partner is a variable.
  submit("Ragnar",
         "ragnar: {Party(h, Healer, MoltenDepths)} "
         "Party(Ragnar, Tank, MoltenDepths) :- "
         "Players(h, Healer, lvl), lvl >= 40");
  std::printf("  (no healer yet; request pends)\n\n");

  // Mercy the healer queues for the same dungeon with any tank.
  submit("Mercy",
         "mercy: {Party(t, Tank, MoltenDepths)} "
         "Party(Mercy, Healer, MoltenDepths) :- "
         "Players(t, Tank, lvl2), lvl2 >= 40");
  std::printf("\n");

  // Zapp tries to queue as a second healer-seeker for the same dungeon
  // AFTER the party formed — the pool is empty again, so he just pends.
  submit("Zapp",
         "zapp: {Party(h2, Healer, MoltenDepths)} "
         "Party(Zapp, DPS, MoltenDepths) :- "
         "Players(h2, Healer, lvl3), lvl3 >= 40");
  std::printf("  pending=%zu (Zapp waits for another healer)\n\n",
              engine.pending_count());

  // Server tick: Zapp's patience runs out.
  engine.AdvanceTime(engine.now() + 31);
  std::printf("\nafter tick: pending=%zu, answered=%llu, expired=%llu\n",
              engine.pending_count(),
              static_cast<unsigned long long>(engine.metrics().answered),
              static_cast<unsigned long long>(engine.metrics().expired));

  // Ragnar and Mercy formed a party even though neither named the other;
  // Lowheal (level 12) was never considered (body constraint lvl >= 40).
  return engine.metrics().answered == 2 ? 0 : 1;
}
