#include "bench/workload.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "bench/bench_common.h"
#include "util/rng.h"
#include "workload/kway_workload.h"

namespace eq::bench {

namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Per-group completion state. Callbacks fire on shard threads; the last
/// member to resolve (remaining hits 0) owns latency_ms and the global
/// outstanding decrement, so no lock is needed.
struct GroupState {
  std::atomic<int> remaining{0};
  std::atomic<bool> failed{false};
  int size = 0;
  Clock::time_point arrival;  ///< scheduled arrival (latency epoch)
  double latency_ms = 0;      ///< written by the last finisher only
};

/// Shared by the driver and every ticket callback: groups must stay alive
/// until the service resolves (or orphans, at destruction) every ticket,
/// which can be after RunOpenLoop returned its result.
struct RunState {
  explicit RunState(size_t n) : groups(n) {}
  std::vector<GroupState> groups;
  std::atomic<size_t> outstanding{0};
};

}  // namespace

OpenLoopResult RunOpenLoop(service::CoordinationInterface* svc,
                           const OpenLoopOptions& opts,
                           const ArrivalFactory& make_arrival) {
  OpenLoopResult out;
  out.offered_qps = opts.offered_qps;
  out.arrivals = opts.arrivals;
  if (opts.arrivals == 0) return out;

  // Pre-generate every arrival's queries — generation cost must not sit
  // inside the timed region (the measurement is coordination, not query
  // construction).
  std::vector<std::vector<client::Query>> arrivals;
  arrivals.reserve(opts.arrivals);
  size_t total_queries = 0;
  for (size_t i = 0; i < opts.arrivals; ++i) {
    arrivals.push_back(make_arrival(i));
    total_queries += arrivals.back().size();
  }
  out.queries = total_queries;
  if (total_queries == 0) return out;

  // The offered QPS is in queries/sec; arrival events carry whole groups,
  // so the event rate scales down by the mean group size.
  double mean_group = static_cast<double>(total_queries) /
                      static_cast<double>(opts.arrivals);
  double event_rate = opts.offered_qps / mean_group;
  Rng rng(opts.seed);
  std::vector<double> offsets_ms =
      workload::PoissonArrivalsMs(opts.arrivals, event_rate, &rng);

  auto state = std::make_shared<RunState>(opts.arrivals);
  for (size_t i = 0; i < opts.arrivals; ++i) {
    int k = static_cast<int>(arrivals[i].size());
    state->groups[i].size = k;
    state->groups[i].remaining.store(k, std::memory_order_relaxed);
  }
  state->outstanding.store(opts.arrivals, std::memory_order_relaxed);

  // Small lead so the first scheduled arrival is still in the future when
  // the client threads start.
  const Clock::time_point t0 = Clock::now() + std::chrono::milliseconds(5);
  for (size_t i = 0; i < opts.arrivals; ++i) {
    state->groups[i].arrival =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double, std::milli>(offsets_ms[i]));
  }

  size_t threads = std::max<size_t>(1, opts.client_threads);
  auto submit_arrival = [&](size_t i) {
    GroupState& gs = state->groups[i];
    for (client::Query& q : arrivals[i]) {
      service::SubmitOptions sopts;
      sopts.callback = [state, i](service::TicketId,
                                  const service::ServiceOutcome& o) {
        GroupState& g = state->groups[i];
        if (o.state != service::ServiceOutcome::State::kAnswered) {
          g.failed.store(true, std::memory_order_relaxed);
        }
        if (g.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          g.latency_ms = MsBetween(g.arrival, Clock::now());
          state->outstanding.fetch_sub(1, std::memory_order_acq_rel);
        }
      };
      auto t = svc->Submit(std::move(q), std::move(sopts));
      if (!t.ok()) {
        // Synchronous rejection (admission control, prepare error): the
        // member never got a ticket, so account for it here.
        gs.failed.store(true, std::memory_order_relaxed);
        if (gs.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          gs.latency_ms = MsBetween(gs.arrival, Clock::now());
          state->outstanding.fetch_sub(1, std::memory_order_acq_rel);
        }
      }
    }
  };

  // Round-robin interleave: each thread's slice of the schedule is already
  // time-ordered, so a simple sleep_until walk reproduces the arrival
  // process even when one thread falls behind.
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = t; i < opts.arrivals; i += threads) {
        std::this_thread::sleep_until(state->groups[i].arrival);
        submit_arrival(i);
      }
    });
  }
  for (auto& c : clients) c.join();

  // Drain: wait for stragglers, bounded. Groups still pending afterwards
  // count as failed; their callbacks may fire later (the shared state
  // keeps them safe), but they no longer enter this run's report.
  const Clock::time_point deadline = Clock::now() + opts.drain_timeout;
  while (state->outstanding.load(std::memory_order_acquire) > 0 &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const Clock::time_point end = Clock::now();

  std::vector<double> latencies;
  latencies.reserve(opts.arrivals);
  size_t answered_queries = 0;
  for (GroupState& g : state->groups) {
    if (g.remaining.load(std::memory_order_acquire) > 0) {
      ++out.failed_groups;
      continue;
    }
    if (g.failed.load(std::memory_order_relaxed)) {
      ++out.failed_groups;
      continue;
    }
    ++out.answered_groups;
    answered_queries += static_cast<size_t>(g.size);
    latencies.push_back(g.latency_ms);
  }

  out.duration_ms = MsBetween(t0, end);
  out.achieved_qps = out.duration_ms > 0
                         ? 1000.0 * static_cast<double>(answered_queries) /
                               out.duration_ms
                         : 0;
  out.mean_ms = Mean(latencies);
  out.p50_ms = Percentile(latencies, 50);
  out.p95_ms = Percentile(latencies, 95);
  out.p99_ms = Percentile(latencies, 99);
  out.max_ms = Percentile(latencies, 100);
  return out;
}

ChurnWriters::ChurnWriters(service::CoordinationInterface* svc,
                           std::string table, double writes_per_sec,
                           size_t threads, uint64_t seed) {
  if (threads == 0) threads = 1;
  if (writes_per_sec <= 0) writes_per_sec = 1;
  const double gap_ms = 1000.0 * static_cast<double>(threads) / writes_per_sec;
  threads_.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    threads_.emplace_back([this, svc, table, gap_ms, t, seed] {
      Rng rng(seed + 0x9e37 * (t + 1));
      auto next = Clock::now();
      for (size_t i = 0; !stop_.load(std::memory_order_relaxed); ++i) {
        // Jittered pacing (0.5x..1.5x the mean gap) so the writers don't
        // beat in lockstep with the arrival schedule.
        double jitter = 0.5 + rng.NextDouble();
        next += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(gap_ms * jitter));
        std::this_thread::sleep_until(next);
        if (stop_.load(std::memory_order_relaxed)) break;
        // Unique noise rows: never satisfy a pending group, but every one
        // publishes a version and wakes the shards reading the table.
        std::string sql = "INSERT INTO " + table + " VALUES (" +
                          std::to_string(900000000 + t * 10000000 + i) +
                          ", 'Churn" + std::to_string(t) + "_" +
                          std::to_string(i) + "')";
        if (svc->ExecuteWrite(sql).ok()) {
          writes_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
}

size_t ChurnWriters::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  return writes_.load(std::memory_order_relaxed);
}

}  // namespace eq::bench
