// Google-benchmark micro suite for the hot paths of the matching pipeline:
// atom unification, MGU merging, atom-index lookups, unifiability-graph
// growth, Algorithm 1 propagation, combined-query execution and end-to-end
// incremental submission.

#include "db/database.h"
#include <benchmark/benchmark.h>

#include "core/combiner.h"
#include "core/matcher.h"
#include "core/partitioner.h"
#include "core/unifiability_graph.h"
#include "engine/engine.h"
#include "ir/parser.h"
#include "unify/unifier.h"
#include "util/rng.h"
#include "workload/flight_workload.h"
#include "workload/social_graph.h"

namespace eq {
namespace {

using workload::FlightWorkload;
using workload::SocialGraph;

const SocialGraph& BenchGraph() {
  static const SocialGraph* graph = [] {
    workload::SocialGraphOptions opts;
    opts.num_users = 20000;
    opts.num_airports = 102;
    opts.plant_cliques = 500;
    return new SocialGraph(SocialGraph::Generate(opts));
  }();
  return *graph;
}

void BM_UnifyAtoms(benchmark::State& state) {
  ir::QueryContext ctx;
  ir::Atom h(ctx.Intern("R"),
             {ir::Term::Const(ctx.StrValue("Kramer")),
              ir::Term::Var(ctx.NewVar("x")),
              ir::Term::Var(ctx.NewVar("y"))});
  ir::Atom p(ctx.Intern("R"),
             {ir::Term::Var(ctx.NewVar("u")),
              ir::Term::Const(ir::Value::Int(122)),
              ir::Term::Var(ctx.NewVar("v"))});
  for (auto _ : state) {
    unify::Unifier u;
    benchmark::DoNotOptimize(unify::UnifyAtoms(h, p, &u));
  }
}
BENCHMARK(BM_UnifyAtoms);

void BM_MguMergeChain(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    unify::Unifier acc;
    for (uint32_t i = 0; i + 1 < k; ++i) {
      unify::Unifier step;
      step.UnionVars(i, i + 1);
      benchmark::DoNotOptimize(acc.MergeFrom(step));
    }
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_MguMergeChain)->Range(8, 2048)->Complexity();

void BM_AtomIndexLookup(benchmark::State& state) {
  ir::QueryContext ctx;
  core::AtomIndex index;
  Rng rng(7);
  SymbolId rel = ctx.Intern("Reserve");
  for (uint32_t i = 0; i < 10000; ++i) {
    index.Add(core::AtomRef{i, 0},
              ir::Atom(rel, {ir::Term::Const(ctx.StrValue(
                                 "u" + std::to_string(i))),
                             ir::Term::Var(ctx.NewVar("x"))}));
  }
  ir::Atom probe(rel, {ir::Term::Const(ctx.StrValue("u777")),
                       ir::Term::Var(ctx.NewVar("y"))});
  std::vector<core::AtomRef> cands;
  for (auto _ : state) {
    cands.clear();
    index.Candidates(probe, &cands);
    benchmark::DoNotOptimize(cands.size());
  }
}
BENCHMARK(BM_AtomIndexLookup);

void BM_GraphAddQueryPair(benchmark::State& state) {
  const SocialGraph& graph = BenchGraph();
  for (auto _ : state) {
    state.PauseTiming();
    ir::QueryContext ctx;
    FlightWorkload wl(&graph, &ctx);
    Rng rng(11);
    ir::QuerySet qs;
    qs.queries = wl.TwoWayBestCase(static_cast<size_t>(state.range(0)), &rng);
    qs.AssignIds();
    core::UnifiabilityGraph g(&qs);
    state.ResumeTiming();
    benchmark::DoNotOptimize(g.Build().ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_GraphAddQueryPair)->Arg(100)->Arg(1000);

void BM_MatchPair(benchmark::State& state) {
  ir::QueryContext ctx;
  ir::Parser parser(&ctx);
  for (auto _ : state) {
    state.PauseTiming();
    auto qs = parser.ParseProgram(
        "{R(Jerry, x)} R(Kramer, x) :- F(x, Paris);"
        "{R(Kramer, y)} R(Jerry, y) :- F(y, Paris)");
    core::UnifiabilityGraph g(&*qs);
    g.Build().ok();
    state.ResumeTiming();
    core::Matcher matcher(&g);
    benchmark::DoNotOptimize(matcher.MatchComponent({0, 1}).size());
  }
}
BENCHMARK(BM_MatchPair);

void BM_CombinedQueryEvaluation(benchmark::State& state) {
  const SocialGraph& graph = BenchGraph();
  ir::QueryContext ctx;
  FlightWorkload wl(&graph, &ctx);
  db::Database db(&ctx.interner());
  wl.PopulateDatabase(&db).ok();
  Rng rng(13);
  ir::QuerySet qs;
  qs.queries = wl.TwoWayBestCase(1, &rng);
  qs.AssignIds();
  core::UnifiabilityGraph g(&qs);
  g.Build().ok();
  core::Matcher matcher(&g);
  auto survivors = matcher.MatchComponent({0, 1});
  core::Combiner combiner(&qs);
  auto cq = combiner.Combine(g, survivors);
  if (!cq.ok()) {
    state.SkipWithError("combine failed");
    return;
  }
  db::Snapshot snap = db.snapshot();  // hoist the freeze out of the loop
  for (auto _ : state) {
    auto answers = combiner.Evaluate(*cq, snap, 1);
    benchmark::DoNotOptimize(answers.ok());
  }
}
BENCHMARK(BM_CombinedQueryEvaluation);

void BM_IncrementalSubmitPair(benchmark::State& state) {
  const SocialGraph& graph = BenchGraph();
  ir::QueryContext ctx;
  FlightWorkload wl(&graph, &ctx);
  db::Database db(&ctx.interner());
  wl.PopulateDatabase(&db).ok();
  Rng rng(17);
  engine::CoordinationEngine engine(
      &ctx, &db, {.mode = engine::EvalMode::kIncremental});
  for (auto _ : state) {
    state.PauseTiming();
    auto pair = wl.TwoWayBestCase(1, &rng);
    state.ResumeTiming();
    for (auto& q : pair) {
      auto r = engine.Submit(std::move(q));
      benchmark::DoNotOptimize(r.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_IncrementalSubmitPair);

void BM_SafetyAdmit(benchmark::State& state) {
  const SocialGraph& graph = BenchGraph();
  ir::QueryContext ctx;
  FlightWorkload wl(&graph, &ctx);
  Rng rng(19);
  ir::QuerySet qs;
  qs.queries = wl.NoUnification(20000, &rng);
  qs.AssignIds();
  core::SafetyChecker checker(&qs);
  size_t next = 0;
  for (auto _ : state) {
    if (next >= qs.queries.size()) {
      state.PauseTiming();
      checker = core::SafetyChecker(&qs);
      next = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(
        checker.Admit(static_cast<ir::QueryId>(next++)).ok());
  }
}
BENCHMARK(BM_SafetyAdmit);

}  // namespace
}  // namespace eq

BENCHMARK_MAIN();
