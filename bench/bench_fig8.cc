// Reproduces Figure 8: "Scalability when queries do not match".
//
// Four workloads stress the matcher (§5.3.4):
//  1. no-coordination / no-unification — postconditions never unify with
//     any head; the unifiability graph stays edge-free. Expected:
//     near-linear (index lookups only).
//  2. "usual partitions" — friendship-chain queries that unify heavily but
//     never complete a coordination; social clustering bounds partition
//     sizes. Expected: near-linear.
//  3. massive cluster, incremental — one huge partition over the largest
//     community; every arrival re-propagates unifiers through the cluster.
//     Expected: super-linear growth ("significant increase in the overall
//     running time").
//  4. massive cluster, set-at-a-time — same queries, matched in one batch
//     pass at the end. Expected: much cheaper than incremental ("for
//     extremely huge coordinating groups, evaluating the queries
//     set-at-a-time is definitely a better approach").

#include "db/database.h"
#include <cstdio>

#include "bench/bench_common.h"
#include "engine/engine.h"
#include "util/rng.h"
#include "workload/flight_workload.h"
#include "workload/social_graph.h"

namespace eq::bench {
namespace {

using workload::FlightWorkload;
using workload::SocialGraph;

enum class Kind {
  kNoUnification,
  kUsualPartitions,
  kMassiveIncremental,
  kMassiveSetAtATime,
};

const char* KindName(Kind k) {
  switch (k) {
    case Kind::kNoUnification:
      return "no-unification";
    case Kind::kUsualPartitions:
      return "usual-partitions";
    case Kind::kMassiveIncremental:
      return "massive-incremental";
    case Kind::kMassiveSetAtATime:
      return "massive-set-at-a-time";
  }
  return "?";
}

double RunOnce(const SocialGraph& graph, Kind kind, size_t n, uint64_t seed) {
  ir::QueryContext ctx;
  FlightWorkload wl(&graph, &ctx);
  db::Database db(&ctx.interner());
  if (!wl.PopulateDatabase(&db).ok()) return 0;

  Rng rng(seed);
  std::vector<ir::EntangledQuery> queries;
  engine::EvalMode mode = engine::EvalMode::kIncremental;
  switch (kind) {
    case Kind::kNoUnification:
      queries = wl.NoUnification(n, &rng);
      break;
    case Kind::kUsualPartitions:
      queries = wl.Chains(n, /*chain_len=*/10, &rng);
      break;
    case Kind::kMassiveIncremental:
      queries = wl.MassiveCluster(n, &rng);
      break;
    case Kind::kMassiveSetAtATime:
      queries = wl.MassiveCluster(n, &rng);
      mode = engine::EvalMode::kSetAtATime;
      break;
  }

  engine::CoordinationEngine engine(&ctx, &db, {.mode = mode});
  Stopwatch sw;
  for (auto& q : queries) {
    auto r = engine.Submit(std::move(q));
    (void)r;
  }
  engine.Flush().ok();
  return sw.ElapsedMillis();
}

}  // namespace
}  // namespace eq::bench

int main(int argc, char** argv) {
  using namespace eq::bench;
  BenchFlags flags = BenchFlags::Parse(argc, argv);

  eq::workload::SocialGraphOptions gopts;
  gopts.num_users = flags.users;
  gopts.num_airports = flags.airports;
  gopts.seed = flags.seed;
  eq::workload::SocialGraph graph = eq::workload::SocialGraph::Generate(gopts);

  std::printf("# Figure 8: stress-testing the query matching\n");
  std::printf("# graph: %u users, %zu edges; runs=%d\n", graph.num_users(),
              graph.num_edges(), flags.runs);

  PrintHeader("figure8",
              "workload                queries   total_ms  stddev_ms  "
              "ms_per_1k_queries");

  // Near-linear workloads: the full query sweep.
  for (Kind kind : {Kind::kNoUnification, Kind::kUsualPartitions}) {
    for (size_t n : QuerySweep(flags.full)) {
      RunStats stats = Repeat(flags.runs, [&] {
        return RunOnce(graph, kind, n, flags.seed + n);
      });
      std::printf("%-23s %8zu %10.2f %10.2f %18.2f\n", KindName(kind), n,
                  stats.mean_ms, stats.stddev_ms,
                  stats.mean_ms * 1000.0 / static_cast<double>(n));
    }
  }
  // The massive cluster grows super-linearly in incremental mode; sweep a
  // smaller range so the default run stays snappy.
  std::vector<size_t> cluster_sweep = {1000, 2000, 4000};
  if (flags.full) {
    cluster_sweep.push_back(8000);
    cluster_sweep.push_back(16000);
  }
  for (Kind kind : {Kind::kMassiveIncremental, Kind::kMassiveSetAtATime}) {
    for (size_t n : cluster_sweep) {
      RunStats stats = Repeat(flags.runs, [&] {
        return RunOnce(graph, kind, n, flags.seed + n);
      });
      std::printf("%-23s %8zu %10.2f %10.2f %18.2f\n", KindName(kind), n,
                  stats.mean_ms, stats.stddev_ms,
                  stats.mean_ms * 1000.0 / static_cast<double>(n));
    }
  }
  std::printf(
      "\n# expected shape: no-unification and usual-partitions near-linear\n"
      "# (flat ms_per_1k); massive-incremental super-linear (rising\n"
      "# ms_per_1k); massive-set-at-a-time well below massive-incremental.\n");
  return 0;
}
