// Service-layer throughput: queries/sec vs shard count.
//
// The tentpole claim of the sharded CoordinationService is that a
// disjoint-relation workload — coordinating pairs entangled through
// per-pair ANSWER relations — scales across shards, because the router
// sends each relation group to one shard and shards share nothing. The
// contended workload (every pair uses ONE global relation) is the designed
// worst case: the colocation invariant forces everything onto a single
// shard, so added shards contribute nothing. Reporting both shows the
// router doing its job in each direction.
//
//   --pairs=N    coordinating pairs per run (default 2000; --full 10000)
//   --shards=A,B,...  shard counts to sweep (default 1,2,4,8)
//   --json=PATH  write BENCH-style JSON rows
//
// Note: scaling is thread parallelism — on a single-core container the
// sweep mostly measures sharding overhead; run on >= 8 cores to see the
// near-linear regime.

#include "db/database.h"
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "bench/workload.h"
#include "db/storage.h"
#include "client/query.h"
#include "client/session.h"
#include "cluster/node.h"
#include "net/socket.h"
#include "service/service.h"
#include "workload/kway_workload.h"

namespace eq::bench {
namespace {

using service::CoordinationService;
using service::ServiceMetrics;
using service::ServiceOptions;
using service::Ticket;

/// Every shard snapshot: a flight table with a spread of destinations and
/// airlines, so each combined query does real join work.
void Bootstrap(ir::QueryContext* ctx, db::Database* db) {
  db->CreateTable("F", {{"fno", ir::ValueType::kInt},
                        {"dest", ir::ValueType::kString}});
  db->CreateTable("A", {{"fno", ir::ValueType::kInt},
                        {"airline", ir::ValueType::kString}});
  const char* dests[] = {"Paris", "Rome", "Ithaca", "Oslo"};
  const char* airlines[] = {"United", "Lufthansa", "Alitalia"};
  for (int fno = 0; fno < 512; ++fno) {
    db->Insert("F", {ir::Value::Int(fno),
                     ir::Value::Str(ctx->Intern(dests[fno % 4]))});
    db->Insert("A", {ir::Value::Int(fno),
                     ir::Value::Str(ctx->Intern(airlines[fno % 3]))});
  }
}

/// The two texts of coordinating pair `i`. Disjoint workload: relation
/// Rel<i> per pair; contended workload: one global relation, distinct users
/// per pair.
std::pair<std::string, std::string> Pair(size_t i, bool disjoint) {
  std::string rel = disjoint ? "Rel" + std::to_string(i) : "R";
  std::string a = "K" + std::to_string(i);
  std::string b = "J" + std::to_string(i);
  return {"{" + rel + "(" + b + ", x)} " + rel + "(" + a +
              ", x) :- F(x, Paris), A(x, United)",
          "{" + rel + "(" + a + ", y)} " + rel + "(" + b +
              ", y) :- F(y, Paris), A(y, United)"};
}

struct RunResult {
  double ms = 0;
  ServiceMetrics metrics;
};

/// A heavier bootstrap for the startup benchmark (--full: 64k rows), so
/// the shared-vs-copied difference is dominated by data, not thread spawn.
void BigBootstrap(size_t rows, ir::QueryContext* ctx, db::Database* db) {
  db->CreateTable("F", {{"fno", ir::ValueType::kInt},
                        {"dest", ir::ValueType::kString}});
  db->CreateTable("A", {{"fno", ir::ValueType::kInt},
                        {"airline", ir::ValueType::kString}});
  const char* dests[] = {"Paris", "Rome", "Ithaca", "Oslo"};
  const char* airlines[] = {"United", "Lufthansa", "Alitalia"};
  for (size_t fno = 0; fno < rows; ++fno) {
    db->Insert("F", {ir::Value::Int(static_cast<int64_t>(fno)),
                     ir::Value::Str(ctx->Intern(dests[fno % 4]))});
    db->Insert("A", {ir::Value::Int(static_cast<int64_t>(fno)),
                     ir::Value::Str(ctx->Intern(airlines[fno % 3]))});
  }
}

/// Startup cost with shared snapshots: service construction runs the
/// bootstrap ONCE and every shard adopts the same immutable snapshot, so
/// the time should be flat in the shard count.
double TimeSharedStartup(uint32_t shards, size_t rows) {
  ServiceOptions opts;
  opts.num_shards = shards;
  opts.bootstrap = [rows](ir::QueryContext* ctx, db::Database* db) {
    BigBootstrap(rows, ctx, db);
  };
  Stopwatch sw;
  CoordinationService svc(opts);
  svc.FlushAll();  // every shard demonstrably up and snapshot-adopted
  return sw.ElapsedMillis();
}

/// The pre-CoW baseline: one full bootstrap per shard into a private
/// context + database, run concurrently on N threads exactly as the old
/// ShardRunner::Run did. Wall clock hides some of the N× work behind
/// cores (on a big box it flattens until memory bandwidth saturates), but
/// the N× memory footprint and N× total CPU are inherent — and on the
/// 1-2 core CI containers wall clock is ~linear in N too.
double TimeCopiedStartup(uint32_t shards, size_t rows) {
  Stopwatch sw;
  std::vector<std::thread> threads;
  threads.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    threads.emplace_back([rows] {
      ir::QueryContext ctx;
      db::Database db(&ctx.interner());
      BigBootstrap(rows, &ctx, &db);
    });
  }
  for (auto& t : threads) t.join();
  return sw.ElapsedMillis();
}

/// Tracing configuration for the observability overhead sweep.
enum class TraceMode { kOff, kSampled, kAll };

RunResult RunOnce(uint32_t shards, size_t pairs, bool disjoint,
                  TraceMode tracing = TraceMode::kSampled) {
  ServiceOptions opts;
  opts.num_shards = shards;
  opts.max_batch = 256;
  opts.max_delay_ticks = 4;
  opts.bootstrap = Bootstrap;
  switch (tracing) {
    case TraceMode::kOff:
      opts.trace_sample_every = 0;
      break;
    case TraceMode::kSampled:
      break;  // the default: every 64th submission
    case TraceMode::kAll:
      opts.trace_all = true;
      break;
  }
  CoordinationService svc(opts);

  // Pre-render the texts so generation cost stays out of the timed region.
  std::vector<std::string> texts;
  texts.reserve(pairs * 2);
  for (size_t i = 0; i < pairs; ++i) {
    auto [qa, qb] = Pair(i, disjoint);
    texts.push_back(std::move(qa));
    texts.push_back(std::move(qb));
  }

  RunResult out;
  Stopwatch sw;
  for (std::string& text : texts) {
    auto t = svc.SubmitAsync(std::move(text));
    (void)t;
  }
  svc.Drain();
  out.ms = sw.ElapsedMillis();
  out.metrics = svc.Metrics();
  return out;
}

/// Batched vs one-at-a-time submission: the same disjoint workload pushed
/// through SubmitBatch in chunks of `batch_size` (1 = the per-query path).
/// Batching amortizes the submit lock and routing cadence — the win is
/// client-side submission overhead, not coordination work.
RunResult RunBatched(uint32_t shards, size_t pairs, size_t batch_size) {
  ServiceOptions opts;
  opts.num_shards = shards;
  opts.max_batch = 256;
  opts.max_delay_ticks = 4;
  opts.bootstrap = Bootstrap;
  CoordinationService svc(opts);

  std::vector<eq::client::Query> queries;
  queries.reserve(pairs * 2);
  for (size_t i = 0; i < pairs; ++i) {
    auto [qa, qb] = Pair(i, /*disjoint=*/true);
    queries.push_back(eq::client::Query::Ir(std::move(qa)));
    queries.push_back(eq::client::Query::Ir(std::move(qb)));
  }

  RunResult out;
  Stopwatch sw;
  for (size_t start = 0; start < queries.size(); start += batch_size) {
    size_t end = std::min(queries.size(), start + batch_size);
    std::vector<eq::client::Query> chunk(
        std::make_move_iterator(queries.begin() + start),
        std::make_move_iterator(queries.begin() + end));
    auto tickets = svc.SubmitBatch(std::move(chunk));
    (void)tickets;
  }
  svc.Drain();
  out.ms = sw.ElapsedMillis();
  out.metrics = svc.Metrics();
  return out;
}

/// One prepare-path run: `threads` client threads each drive `ops`
/// Canonicalize calls (the prepare worker without submit/coordination —
/// pool checkout, parse/translate, plan-cache traffic, nothing else).
struct PrepareResult {
  double ms = 0;
  double hit_rate = 0;  ///< plan-cache hits / (hits + misses); 0 when cold
};

/// `cached` on: every thread cycles a handful of query shapes, so after
/// warmup the run measures the cache-hit path (key normalization + LRU
/// lookup, no pool checkout). Off: every op is a distinct shape with the
/// cache disabled — the cold path, one full parse per op on a pooled
/// context. Threads > 1 with cold shapes is the contention case the pool
/// exists for: the old single edge mutex serialized it.
PrepareResult RunPrepare(size_t threads, size_t ops, bool cached) {
  ServiceOptions opts;
  opts.num_shards = 2;
  opts.bootstrap = Bootstrap;
  opts.edge_pool_size = threads;  // one context per preparing thread
  opts.plan_cache_capacity = cached ? 1024 : 0;
  CoordinationService svc(opts);

  // Pre-render per-thread texts so generation stays out of the timed loop.
  std::vector<std::vector<std::string>> texts(threads);
  for (size_t t = 0; t < threads; ++t) {
    texts[t].reserve(ops);
    for (size_t i = 0; i < ops; ++i) {
      size_t shape = cached ? i % 4 : t * ops + i;
      std::string rel = "Rel" + std::to_string(shape);
      texts[t].push_back("{" + rel + "(J, x)} " + rel +
                         "(K, x) :- F(x, Paris), A(x, United)");
    }
  }
  if (cached) {  // warm the 4 shapes: the timed region is pure hits
    for (size_t i = 0; i < 4; ++i) {
      (void)svc.Canonicalize(eq::client::Query::Ir(texts[0][i]));
    }
  }

  PrepareResult out;
  Stopwatch sw;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&svc, &texts, t] {
      for (const std::string& text : texts[t]) {
        (void)svc.Canonicalize(eq::client::Query::Ir(text));
      }
    });
  }
  for (auto& w : workers) w.join();
  out.ms = sw.ElapsedMillis();
  ServiceMetrics m = svc.Metrics();
  uint64_t looked_up = m.prepare_cache_hits + m.prepare_cache_misses;
  out.hit_rate = looked_up > 0 ? static_cast<double>(m.prepare_cache_hits) /
                                     static_cast<double>(looked_up)
                               : 0;
  return out;
}

/// Per-round write→answer latencies for the reactive benchmark.
struct ReactiveStats {
  std::vector<double> ms;  ///< rounds where the pair answered
  size_t raced = 0;        ///< rounds a flush raced in and failed the pair
};

/// Measures write→answer latency of a pending pair completed by
/// ApplyWrite: `wakeups` on exercises the WriteNotify path (the write
/// itself re-evaluates the affected partition); off is the old flush-bound
/// pipeline, where the answer waits for the next tick-driven flush. Both
/// runs share the exact same tick cadence, so only the wake-up source
/// differs.
ReactiveStats RunReactive(bool wakeups, size_t rounds) {
  ServiceOptions opts;
  opts.num_shards = 2;
  opts.bootstrap = Bootstrap;
  opts.write_wakeups = wakeups;
  // The baseline's only wake-up path: 2ms ticks, flush after 4 ticks with
  // pending work -> a flush-bound answer lands up to ~8ms after the write.
  opts.tick_interval = std::chrono::milliseconds(2);
  opts.max_delay_ticks = 4;
  opts.max_batch = 1 << 20;  // never flush on batch size
  CoordinationService svc(opts);

  ReactiveStats out;
  int id = 0;
  while (out.ms.size() < rounds && out.raced < rounds * 4) {
    std::string rel = "Rel" + std::to_string(id);
    std::string dest = "Dest" + std::to_string(id);
    ++id;
    // The pending gauge is mirrored after shard op batches; let the
    // previous round's resolution drain out of it so the >= 2 check below
    // observes THIS round's pair, not a stale value (a write posted
    // before the pair registers would miss the wake-up index and fall
    // back to flush-bound latency, polluting the reactive sample).
    for (int i = 0; i < 2000 && svc.Metrics().pending != 0; ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    // Reset the per-shard flush clock (idle ticks accumulate toward the
    // max_delay_ticks deadline): after this, the next tick-driven flush is
    // a full cadence away, giving the write its ~8ms flush-bound window
    // instead of an immediate flush that fails the dataless pair.
    svc.FlushAll();
    auto a = svc.SubmitAsync("{" + rel + "(B, x)} " + rel + "(A, x) :- F(x, " +
                             dest + ")");
    auto b = svc.SubmitAsync("{" + rel + "(A, y)} " + rel + "(B, y) :- F(y, " +
                             dest + ")");
    if (!a.ok() || !b.ok()) continue;
    // Wait until the pair is demonstrably pending on its shard, so both
    // paths measure pure write→answer latency (not submit processing).
    bool pending = false;
    for (int i = 0; i < 2000 && !a->Done(); ++i) {
      if (svc.Metrics().pending >= 2) {
        pending = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    if (!pending) {  // a tick flush failed the pair before the write
      ++out.raced;
      continue;
    }
    Stopwatch sw;
    svc.ApplyWrite("F", {ir::Value::Int(100000 + id),
                         ir::Value::Str(svc.interner().Intern(dest))});
    a->Wait();
    b->Wait();
    double ms = sw.ElapsedMillis();
    using State = service::ServiceOutcome::State;
    if (a->outcome().state == State::kAnswered &&
        b->outcome().state == State::kAnswered) {
      out.ms.push_back(ms);
    } else {
      ++out.raced;  // the flush slipped between the submit and the write
    }
  }
  return out;
}

/// Outcome of one write-burst run against a pending pair.
struct BurstStats {
  size_t writes = 0;        ///< writes issued (incl. the closing one)
  uint64_t notifies = 0;    ///< WriteNotify ops actually processed
  uint64_t coalesced = 0;   ///< notifications merged into a queued op
  double total_ms = 0;      ///< burst start → pair answered
};

/// Coalescing under a write burst: a pending pair reads F, and `writes`
/// rows land in F back-to-back from several client threads (none of them
/// satisfying the pair, so it stays pending and every write is
/// notify-worthy). While the shard is busy re-evaluating one wake-up,
/// later notifications merge into the single queued WriteNotify instead of
/// piling up — so the shard re-evaluates once per drain, not once per
/// write, and `notifies + coalesced ≈ writes` with `notifies` far below
/// `writes`. A final matching write closes the round.
BurstStats RunWriteBurst(size_t writes) {
  ServiceOptions opts;
  opts.num_shards = 2;
  opts.bootstrap = Bootstrap;
  opts.mode = engine::EvalMode::kIncremental;  // wake-up driven only
  CoordinationService svc(opts);

  auto a = svc.SubmitAsync("{RelB(B, x)} RelB(A, x) :- F(x, BurstDest)");
  auto b = svc.SubmitAsync("{RelB(A, y)} RelB(B, y) :- F(y, BurstDest)");
  if (!a.ok() || !b.ok()) return {};
  for (int i = 0; i < 2000 && svc.Metrics().pending < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  BurstStats out;
  SymbolId noise = svc.interner().Intern("BurstNoise");
  Stopwatch sw;
  const size_t kWriters = 4;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&svc, noise, w, writes] {
      for (size_t i = w; i < writes; i += kWriters) {
        svc.ApplyWrite("F", {ir::Value::Int(200000 + static_cast<int>(i)),
                             ir::Value::Str(noise)});
      }
    });
  }
  for (auto& t : writers) t.join();
  svc.ApplyWrite("F", {ir::Value::Int(999999),
                       ir::Value::Str(svc.interner().Intern("BurstDest"))});
  a->Wait();
  b->Wait();
  out.total_ms = sw.ElapsedMillis();
  svc.Drain();  // let any still-queued notify drain before reading counters
  ServiceMetrics m = svc.Metrics();
  out.writes = writes + 1;
  out.notifies = m.write_wakeups;
  out.coalesced = m.write_notifies_coalesced;
  return out;
}

// --------------------------------------------------------------- cluster --

/// The embedded per-node service for the loopback cluster: incremental
/// evaluation so a pair resolves on the submit that completes it, exactly
/// like the cluster test configuration.
ServiceOptions ClusterLocalOpts() {
  ServiceOptions o;
  o.num_shards = 2;
  o.mode = engine::EvalMode::kIncremental;
  o.max_batch = 16;
  o.max_delay_ticks = 1;
  o.bootstrap = Bootstrap;
  return o;
}

struct LoopbackCluster {
  std::unique_ptr<cluster::ClusterNode> a;  // node 0 = storage owner
  std::unique_ptr<cluster::ClusterNode> b;  // node 1
  bool ok() const { return a != nullptr && b != nullptr; }
};

LoopbackCluster StartLoopbackCluster() {
  LoopbackCluster c;
  auto free_port = []() -> uint16_t {
    auto l = net::Listener::Bind("127.0.0.1", 0);
    return l.ok() ? l.value().port() : 0;
  };
  uint16_t pa = free_port();
  uint16_t pb = free_port();
  if (pa == 0 || pb == 0) return c;
  auto mk = [](uint32_t self, uint16_t self_port, uint32_t peer,
               uint16_t peer_port) {
    cluster::ClusterOptions o;
    o.node_id = self;
    o.listen_port = self_port;
    o.peers = {{peer, "127.0.0.1", peer_port}};
    o.storage_owner = 0;
    o.io_timeout_ms = 5000;
    o.service = ClusterLocalOpts();
    return cluster::ClusterNode::Start(std::move(o));
  };
  auto ra = mk(0, pa, 1, pb);
  auto rb = mk(1, pb, 0, pa);
  if (ra.ok()) c.a = std::move(ra.value());
  if (rb.ok()) c.b = std::move(rb.value());
  return c;
}

/// First relation with the given prefix whose entangled group the cluster
/// routes to `want` (both nodes compute the same deterministic owner).
std::string ClusterRelOwnedBy(cluster::ClusterService& svc, uint32_t want,
                              const std::string& prefix) {
  for (int i = 0; i < 256; ++i) {
    std::string rel = prefix + std::to_string(i);
    if (svc.OwnerOf({rel}) == want) return rel;
  }
  return prefix + "0";  // unreachable with a 2-node member list
}

std::pair<std::string, std::string> ClusterPair(const std::string& rel,
                                                const std::string& dest) {
  return {"{" + rel + "(J, x)} " + rel + "(K, x) :- F(x, " + dest + ")",
          "{" + rel + "(K, y)} " + rel + "(J, y) :- F(y, " + dest + ")"};
}

/// Submit-to-answer latency of a coordinating pair whose group is owned
/// by `owner_node`, submitted through `node`'s session: owner == self is
/// the in-process path, owner == peer adds one forwarded submit and one
/// outcome frame per half over loopback TCP.
std::vector<double> RunClusterSubmit(cluster::ClusterNode& node,
                                     uint32_t owner_node, size_t rounds,
                                     const char* prefix) {
  std::vector<double> ms;
  ms.reserve(rounds);
  client::Session session(&node.service());
  for (size_t i = 0; i < rounds; ++i) {
    std::string rel = ClusterRelOwnedBy(
        node.service(), owner_node,
        std::string(prefix) + std::to_string(i) + "x");
    auto [qa, qb] = ClusterPair(rel, "Paris");
    Stopwatch sw;
    auto ta = session.SubmitIr(qa);
    auto tb = session.SubmitIr(qb);
    if (!ta.ok() || !tb.ok()) continue;
    if (!ta->WaitFor(std::chrono::seconds(10))) continue;
    if (!tb->WaitFor(std::chrono::seconds(10))) continue;
    ms.push_back(sw.ElapsedMillis());
  }
  return ms;
}

/// Write→remote-wakeup latency: a pair parked on node 1 waiting for a row
/// that does not exist, completed by a write issued on node 1 — which
/// forwards to the storage owner (node 0), applies there, and ships back
/// as a version delta that wakes the pending pair.
std::vector<double> RunClusterWriteWakeup(cluster::ClusterNode& b,
                                          size_t rounds) {
  std::vector<double> ms;
  ms.reserve(rounds);
  client::Session on_b(&b.service());
  for (size_t i = 0; i < rounds; ++i) {
    std::string rel =
        ClusterRelOwnedBy(b.service(), 1, "W" + std::to_string(i) + "x");
    std::string dest = "Dst" + std::to_string(i);
    auto [qa, qb] = ClusterPair(rel, dest);
    auto ta = on_b.SubmitIr(qa);
    auto tb = on_b.SubmitIr(qb);
    if (!ta.ok() || !tb.ok()) continue;
    Stopwatch sw;
    auto w = on_b.ExecuteWrite("INSERT INTO F VALUES (" +
                               std::to_string(300000 + static_cast<int>(i)) +
                               ", '" + dest + "')");
    if (!w.ok()) continue;
    if (!ta->WaitFor(std::chrono::seconds(10))) continue;
    if (!tb->WaitFor(std::chrono::seconds(10))) continue;
    ms.push_back(sw.ElapsedMillis());
  }
  return ms;
}

// Percentile and Mean come from bench_common.h (shared with the open-loop
// driver in bench/workload.cc).

// -------------------------------------------------------------- workload --

/// Service configuration for the open-loop workload runs: incremental
/// evaluation, so a k-way group resolves on the submission that closes its
/// postcondition ring — measured latency is queueing + coordination, not
/// flush cadence.
ServiceOptions WorkloadOpts() {
  ServiceOptions o;
  o.num_shards = 4;
  o.mode = engine::EvalMode::kIncremental;
  o.bootstrap = Bootstrap;
  return o;
}

/// One catalog entry of the open-loop workload matrix.
struct WorkloadPoint {
  const char* workload;  ///< "kway" | "churn" | "skew"
  int k;                 ///< members per entangled group
  double offered_qps;    ///< target offered load, queries/sec
  double write_qps;      ///< churn only: background INSERT rate
  double zipf_theta;     ///< skew only: Zipf exponent over hot groups
};

/// Hot groups the skew workload samples from (adversarial: a high theta
/// concentrates most arrivals on a handful of relations, which the
/// colocation invariant pins to single shards).
constexpr size_t kSkewHotGroups = 64;

OpenLoopResult RunWorkloadPoint(const WorkloadPoint& p, size_t arrivals,
                                uint64_t seed) {
  CoordinationService svc(WorkloadOpts());
  OpenLoopOptions o;
  o.offered_qps = p.offered_qps;
  o.arrivals = arrivals;
  o.client_threads = 4;
  o.seed = seed;
  o.drain_timeout = std::chrono::milliseconds(10000);

  ArrivalFactory factory;
  if (std::strcmp(p.workload, "skew") == 0) {
    // Factories run sequentially before the timed region, so sampling
    // inside one is deterministic for the seed.
    auto sampler =
        std::make_shared<workload::ZipfSampler>(kSkewHotGroups, p.zipf_theta);
    auto rng = std::make_shared<Rng>(seed ^ 0x5eedULL);
    factory = [sampler, rng](size_t i) {
      auto [qa, qb] =
          workload::MakeHotGroupPair(i, sampler->Sample(rng.get()));
      std::vector<eq::client::Query> group;
      group.push_back(std::move(qa));
      group.push_back(std::move(qb));
      return group;
    };
  } else {
    int k = p.k;
    factory = [k](size_t i) {
      return workload::MakeKWayGroup({.group_id = i, .k = k});
    };
  }

  if (p.write_qps > 0) {
    ChurnWriters writers(&svc, "F", p.write_qps, /*threads=*/2, seed);
    return RunOpenLoop(&svc, o, factory);
    // writers stop + join on scope exit, before the service tears down
  }
  return RunOpenLoop(&svc, o, factory);
}

// ---------------------------------------------------------- storage churn --

struct ChurnResult {
  RunStats stats;               ///< wall time of the op loop, per run
  uint64_t retained = 0;        ///< versions alive when the loop ended
  uint64_t retired = 0;         ///< versions released over the run
  double dead_fraction = 0;     ///< tombstone density of the head table
};

/// Delete/update/insert churn straight against db::Storage (no service on
/// top): every op publishes a version, so this isolates what the MVCC
/// machinery costs and what it buys.
///
///   gc_on      — a registered reader reports the head after every op, so
///                superseded versions release eagerly and retained stays
///                at 1. gc off pins the reader at the start version: the
///                whole history stays retained, one version per op.
///                (Every write clones either way — the head snapshot is
///                immutable and always shares the TableVersion — so GC
///                buys bounded memory, not a faster write path.)
///   deferred   — tombstone threshold 0.3 (deletes mark rows dead and
///                compaction runs when 30% of the table is dead). eager is
///                threshold 0: every delete compacts immediately, the
///                pre-tombstone behaviour.
ChurnResult RunStorageChurn(bool gc_on, bool deferred, size_t rows,
                            size_t ops, uint64_t seed, int runs) {
  const char* dests[] = {"Paris", "Rome", "Ithaca", "Oslo"};
  ChurnResult out;
  out.stats = Repeat(runs, [&] {
    auto interner = std::make_shared<StringInterner>();
    db::Storage storage(interner);
    db::Database* dbp = storage.mutable_db();
    dbp->CreateTable("C", {{"id", ir::ValueType::kInt},
                           {"dest", ir::ValueType::kString}});
    dbp->GetTable("C")->BuildIndex(0);
    dbp->GetTable("C")->set_compaction_threshold(deferred ? 0.3 : 0.0);
    auto dest = [&](size_t i) {
      return ir::Value::Str(interner->Intern(dests[i % 4]));
    };
    std::vector<int64_t> live;
    live.reserve(rows + ops / 3 + 1);
    for (size_t i = 0; i < rows; ++i) {
      int64_t id = static_cast<int64_t>(i);
      dbp->Insert("C", {ir::Value::Int(id), dest(i)});
      live.push_back(id);
    }
    storage.Publish();

    constexpr uint64_t kReader = 1;
    storage.RegisterReader(kReader);
    storage.ReportReadVersion(kReader, storage.version());

    Rng rng(seed);
    int64_t next_id = static_cast<int64_t>(rows);
    Stopwatch sw;
    for (size_t op = 0; op < ops; ++op) {
      switch (op % 3) {
        case 0: {  // delete one random live row by id
          size_t j = rng.Below(live.size());
          db::Predicate p;
          p.And(0, ir::CompareOp::kEq, ir::Value::Int(live[j]));
          size_t removed = 0;
          storage.ApplyDelete("C", p, &removed);
          live[j] = live.back();
          live.pop_back();
          break;
        }
        case 1: {  // insert a fresh row
          storage.ApplyWrite(
              "C", {ir::Value::Int(next_id), dest(rng.Below(4))});
          live.push_back(next_id++);
          break;
        }
        default: {  // update one random live row in place (MVCC rewrite)
          size_t j = rng.Below(live.size());
          db::Predicate p;
          p.And(0, ir::CompareOp::kEq, ir::Value::Int(live[j]));
          std::vector<db::ColumnSet> sets = {{1, dest(rng.Below(4))}};
          size_t updated = 0;
          storage.ApplyUpdate("C", p, sets, &updated);
          break;
        }
      }
      if (gc_on) storage.ReportReadVersion(kReader, storage.version());
    }
    double ms = sw.ElapsedMillis();
    out.retained = storage.retained_versions();
    out.retired = storage.versions_retired();
    const db::TableVersion* head = storage.Current().GetTable("C");
    out.dead_fraction = head ? head->dead_fraction() : 0.0;
    storage.UnregisterReader(kReader);
    return ms;
  });
  return out;
}

}  // namespace
}  // namespace eq::bench

int main(int argc, char** argv) {
  using namespace eq::bench;
  // Split off the service-specific flags before the shared parse (which
  // warns on flags it does not know).
  size_t pairs_arg = 0;
  std::vector<uint32_t> shard_counts = {1, 2, 4, 8};
  std::vector<char*> shared_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pairs=", 8) == 0) {
      pairs_arg = static_cast<size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shard_counts.clear();
      for (const char* p = argv[i] + 9; *p;) {
        shard_counts.push_back(static_cast<uint32_t>(std::atoi(p)));
        while (*p && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else {
      shared_args.push_back(argv[i]);
    }
  }
  BenchFlags flags = BenchFlags::Parse(static_cast<int>(shared_args.size()),
                                       shared_args.data());
  size_t pairs = pairs_arg ? pairs_arg : (flags.full ? 10000 : 2000);

  std::printf("# service throughput vs shard count (%zu pairs, runs=%d)\n",
              pairs, flags.runs);
  std::printf("# hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  JsonReporter json;

  for (bool disjoint : {true, false}) {
    PrintHeader(disjoint ? "disjoint-relations (scales)"
                         : "single-hot-group (colocated by design)",
                "shards   queries   total_ms      qps  answered  "
                "migrations  p50_ms  p99_ms  speedup");
    double base_qps = 0;
    for (uint32_t shards : shard_counts) {
      RunResult last;
      RunStats stats = Repeat(flags.runs, [&] {
        last = RunOnce(shards, pairs, disjoint);
        return last.ms;
      });
      double qps =
          stats.mean_ms > 0 ? 1000.0 * (2 * pairs) / stats.mean_ms : 0;
      if (shards == shard_counts.front()) base_qps = qps;
      std::printf("%6u %9zu %10.2f %8.0f %9llu %11llu %7.3f %7.3f %8.2fx\n",
                  shards, 2 * pairs, stats.mean_ms, qps,
                  (unsigned long long)last.metrics.answered,
                  (unsigned long long)last.metrics.migrations,
                  last.metrics.p50_latency_ms, last.metrics.p99_latency_ms,
                  base_qps > 0 ? qps / base_qps : 0);
      auto& row = json.NewRow("service_scaling");
      row.Set("workload", std::string(disjoint ? "disjoint" : "hot-group"))
          .Set("shards", static_cast<double>(shards))
          .Set("queries", static_cast<double>(2 * pairs))
          .Set("total_ms", stats.mean_ms)
          .Set("stddev_ms", stats.stddev_ms)
          .Set("qps", qps)
          .Set("speedup", base_qps > 0 ? qps / base_qps : 0)
          .Set("answered", static_cast<double>(last.metrics.answered))
          .Set("migrations", static_cast<double>(last.metrics.migrations))
          .Set("p50_ms", last.metrics.p50_latency_ms)
          .Set("p99_ms", last.metrics.p99_latency_ms);
    }
  }
  // Batched vs one-at-a-time submission at a fixed shard count.
  {
    uint32_t shards = shard_counts.back();
    PrintHeader("batched vs one-at-a-time submit (disjoint workload)",
                "batch_size   queries   total_ms      qps  answered  speedup");
    double base_qps = 0;
    for (size_t batch_size : {size_t{1}, size_t{16}, size_t{256},
                              2 * pairs}) {
      RunResult last;
      RunStats stats = Repeat(flags.runs, [&] {
        last = RunBatched(shards, pairs, batch_size);
        return last.ms;
      });
      double qps =
          stats.mean_ms > 0 ? 1000.0 * (2 * pairs) / stats.mean_ms : 0;
      if (base_qps == 0) base_qps = qps;
      std::printf("%10zu %9zu %10.2f %8.0f %9llu %8.2fx\n", batch_size,
                  2 * pairs, stats.mean_ms, qps,
                  (unsigned long long)last.metrics.answered,
                  base_qps > 0 ? qps / base_qps : 0);
      auto& row = json.NewRow("submit_batch");
      row.Set("shards", static_cast<double>(shards))
          .Set("batch_size", static_cast<double>(batch_size))
          .Set("queries", static_cast<double>(2 * pairs))
          .Set("total_ms", stats.mean_ms)
          .Set("stddev_ms", stats.stddev_ms)
          .Set("qps", qps)
          .Set("speedup", base_qps > 0 ? qps / base_qps : 0)
          .Set("answered", static_cast<double>(last.metrics.answered))
          .Set("p50_ms", last.metrics.p50_latency_ms)
          .Set("p99_ms", last.metrics.p99_latency_ms);
    }
  }

  // Prepare path: pooled edge contexts + fingerprint-keyed plan cache,
  // measured through Canonicalize (prepare work only, no coordination).
  // Cold = distinct shapes, cache off — parse cost on a pooled context,
  // and the multi-thread rows show the pool letting prepares overlap
  // where the old single edge mutex serialized them. Cached = a few
  // repeated shapes — the steady-state hit path skips the pool entirely.
  {
    size_t prep_ops = flags.full ? 20000 : 4000;
    PrintHeader("prepare: pooled edge + plan cache (Canonicalize, IR dialect)",
                "mode    threads      ops   total_ms  us_per_op  ops_per_sec"
                "  hit_rate  speedup");
    struct ModeSpec {
      const char* name;
      bool cached;
    } modes[] = {{"cold", false}, {"cached", true}};
    for (const ModeSpec& m : modes) {
      double base_ops_per_sec = 0;
      for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
        PrepareResult last;
        RunStats stats = Repeat(flags.runs, [&] {
          last = RunPrepare(threads, prep_ops, m.cached);
          return last.ms;
        });
        size_t total_ops = threads * prep_ops;
        double ops_per_sec =
            stats.mean_ms > 0 ? 1000.0 * total_ops / stats.mean_ms : 0;
        double us_per_op =
            total_ops > 0 ? 1000.0 * stats.mean_ms / total_ops : 0;
        if (threads == 1) base_ops_per_sec = ops_per_sec;
        std::printf("%-7s %7zu %8zu %10.2f %10.3f %12.0f %9.3f %8.2fx\n",
                    m.name, threads, total_ops, stats.mean_ms, us_per_op,
                    ops_per_sec, last.hit_rate,
                    base_ops_per_sec > 0 ? ops_per_sec / base_ops_per_sec
                                         : 0);
        auto& row = json.NewRow("prepare");
        row.Set("mode", std::string(m.name))
            .Set("threads", static_cast<double>(threads))
            .Set("ops", static_cast<double>(total_ops))
            .Set("total_ms", stats.mean_ms)
            .Set("stddev_ms", stats.stddev_ms)
            .Set("us_per_op", us_per_op)
            .Set("ops_per_sec", ops_per_sec)
            .Set("hit_rate", last.hit_rate)
            .Set("speedup", base_ops_per_sec > 0
                                ? ops_per_sec / base_ops_per_sec
                                : 0);
      }
    }
    std::printf(
        "# cached us_per_op should sit well below cold (a hit is a\n"
        "# normalize + LRU lookup, no parse, no pool checkout); cold\n"
        "# multi-thread rows scale with cores now that prepares run on\n"
        "# pooled contexts instead of one mutex-guarded edge catalog.\n");
  }

  // Observability overhead: the same disjoint workload with tracing
  // disabled, at the default 1-in-64 sampling, and with trace_all. The
  // interesting number is the overhead ratio of sampled vs off — the
  // default configuration should cost well under 2%.
  {
    uint32_t shards = shard_counts.back();
    PrintHeader("observability: lifecycle tracing overhead (disjoint workload)",
                "tracing    queries   total_ms      qps  overhead");
    struct ModeSpec {
      const char* name;
      TraceMode mode;
    } modes[] = {{"off", TraceMode::kOff},
                 {"sampled", TraceMode::kSampled},
                 {"all", TraceMode::kAll}};
    double off_qps = 0;
    for (const ModeSpec& m : modes) {
      RunResult last;
      RunStats stats = Repeat(flags.runs, [&] {
        last = RunOnce(shards, pairs, /*disjoint=*/true, m.mode);
        return last.ms;
      });
      double qps =
          stats.mean_ms > 0 ? 1000.0 * (2 * pairs) / stats.mean_ms : 0;
      if (m.mode == TraceMode::kOff) off_qps = qps;
      double overhead = (off_qps > 0 && qps > 0) ? off_qps / qps - 1.0 : 0;
      std::printf("%-8s %9zu %10.2f %8.0f %7.1f%%\n", m.name, 2 * pairs,
                  stats.mean_ms, qps, 100.0 * overhead);
      auto& row = json.NewRow("observability");
      row.Set("tracing", std::string(m.name))
          .Set("shards", static_cast<double>(shards))
          .Set("queries", static_cast<double>(2 * pairs))
          .Set("total_ms", stats.mean_ms)
          .Set("stddev_ms", stats.stddev_ms)
          .Set("qps", qps)
          .Set("overhead_ratio", overhead)
          .Set("answered", static_cast<double>(last.metrics.answered));
    }
  }

  // Reactive write pipeline: write→answer latency of a pending pair
  // completed by ApplyWrite, with write-triggered re-evaluation on
  // (WriteNotify wakes the affected partition immediately) vs off (the
  // old pipeline: the answer waits for the next tick-driven flush).
  {
    size_t rounds = flags.full ? 100 : 30;
    PrintHeader(
        "reactive: write→answer latency (pair pending on the written row)",
        "path          rounds   mean_ms    p50_ms    max_ms  raced  speedup");
    ReactiveStats flush_bound = RunReactive(/*wakeups=*/false, rounds);
    ReactiveStats wakeup = RunReactive(/*wakeups=*/true, rounds);
    double flush_mean = Mean(flush_bound.ms);
    double wakeup_mean = Mean(wakeup.ms);
    struct RowSpec {
      const char* path;
      const ReactiveStats* stats;
      double speedup;
    } rows[] = {
        {"flush-bound", &flush_bound, 1.0},
        {"wakeup", &wakeup, wakeup_mean > 0 ? flush_mean / wakeup_mean : 0},
    };
    for (const RowSpec& r : rows) {
      std::printf("%-12s %7zu %9.3f %9.3f %9.3f %6zu %7.2fx\n", r.path,
                  r.stats->ms.size(), Mean(r.stats->ms),
                  Percentile(r.stats->ms, 50), Percentile(r.stats->ms, 100),
                  r.stats->raced, r.speedup);
      auto& row = json.NewRow("reactive");
      row.Set("path", std::string(r.path))
          .Set("rounds", static_cast<double>(r.stats->ms.size()))
          .Set("mean_ms", Mean(r.stats->ms))
          .Set("p50_ms", Percentile(r.stats->ms, 50))
          .Set("max_ms", Percentile(r.stats->ms, 100))
          .Set("raced", static_cast<double>(r.stats->raced))
          .Set("speedup", r.speedup);
    }
    std::printf(
        "# wakeup should sit well below flush-bound: the write itself\n"
        "# re-evaluates the affected pending partition, instead of the\n"
        "# answer waiting out the flush cadence (~2ms ticks x 4).\n");
  }

  // Burst coalescing: under a write storm against a pending pair, the
  // per-shard WriteNotify slot merges notifications that arrive while one
  // is queued — re-evaluations stay proportional to queue drains, not to
  // writes.
  {
    size_t writes = flags.full ? 2000 : 500;
    PrintHeader(
        "reactive_burst: notify coalescing under a write storm",
        "  writes  notifies  coalesced  damping  total_ms");
    BurstStats burst = RunWriteBurst(writes);
    double damping = burst.notifies > 0
                         ? static_cast<double>(burst.writes) /
                               static_cast<double>(burst.notifies)
                         : 0;
    std::printf("%8zu %9llu %10llu %7.1fx %9.2f\n", burst.writes,
                (unsigned long long)burst.notifies,
                (unsigned long long)burst.coalesced, damping, burst.total_ms);
    auto& row = json.NewRow("reactive_burst");
    row.Set("writes", static_cast<double>(burst.writes))
        .Set("notifies", static_cast<double>(burst.notifies))
        .Set("coalesced", static_cast<double>(burst.coalesced))
        .Set("damping", damping)
        .Set("total_ms", burst.total_ms);
    std::printf(
        "# notifies should sit well below writes (damping >> 1): while one\n"
        "# WriteNotify is queued, concurrent writers merge their touched\n"
        "# relations into it instead of enqueueing more ops.\n");
  }

  // Startup: shared immutable snapshot (bootstrap once, N shards adopt)
  // vs the pre-CoW baseline of one private bootstrap per shard.
  {
    size_t rows = flags.full ? 65536 : 8192;
    std::string title =
        "startup: shared snapshot vs per-shard bootstrap copies (" +
        std::to_string(rows) + " rows/table)";
    PrintHeader(title.c_str(), "shards  shared_ms  copied_ms  shared/copied");
    for (uint32_t shards : shard_counts) {
      double shared_ms = 0, copied_ms = 0;
      RunStats shared_stats = Repeat(flags.runs, [&] {
        shared_ms = TimeSharedStartup(shards, rows);
        return shared_ms;
      });
      RunStats copied_stats = Repeat(flags.runs, [&] {
        copied_ms = TimeCopiedStartup(shards, rows);
        return copied_ms;
      });
      std::printf("%6u %10.2f %10.2f %14.2fx\n", shards,
                  shared_stats.mean_ms, copied_stats.mean_ms,
                  copied_stats.mean_ms > 0
                      ? shared_stats.mean_ms / copied_stats.mean_ms
                      : 0);
      auto& row = json.NewRow("startup");
      row.Set("shards", static_cast<double>(shards))
          .Set("rows_per_table", static_cast<double>(rows))
          .Set("shared_ms", shared_stats.mean_ms)
          .Set("shared_stddev_ms", shared_stats.stddev_ms)
          .Set("copied_ms", copied_stats.mean_ms)
          .Set("copied_stddev_ms", copied_stats.stddev_ms);
    }
    std::printf(
        "# shared_ms should stay flat as shards grow (one bootstrap, one\n"
        "# copy of every table). copied_ms runs the old per-shard\n"
        "# bootstraps concurrently: wall clock grows once shards exceed\n"
        "# cores (always on 1-2 core CI), and total CPU + memory are N x\n"
        "# regardless.\n");
  }

  // Cluster: the identical Ticket API over a 2-node loopback cluster —
  // what one network hop costs a forwarded submit, and how fast a write
  // on one node answers a query parked on the other via delta
  // replication.
  {
    size_t rounds = flags.full ? 100 : 30;
    PrintHeader(
        "cluster: 2-node loopback (local vs forwarded submit, write->wakeup)",
        "path                  rounds   mean_ms    p50_ms    max_ms");
    LoopbackCluster cl = StartLoopbackCluster();
    if (!cl.ok()) {
      std::printf("# loopback cluster failed to start; section skipped\n");
    } else {
      struct Spec {
        const char* path;
        std::vector<double> ms;
      } specs[] = {
          {"local-submit", RunClusterSubmit(*cl.a, 0, rounds, "BL")},
          {"remote-submit", RunClusterSubmit(*cl.a, 1, rounds, "BR")},
          {"write-remote-wakeup", RunClusterWriteWakeup(*cl.b, rounds)},
      };
      for (const Spec& s : specs) {
        std::printf("%-21s %7zu %9.3f %9.3f %9.3f\n", s.path, s.ms.size(),
                    Mean(s.ms), Percentile(s.ms, 50), Percentile(s.ms, 100));
        auto& row = json.NewRow("cluster");
        row.Set("path", std::string(s.path))
            .Set("rounds", static_cast<double>(s.ms.size()))
            .Set("mean_ms", Mean(s.ms))
            .Set("p50_ms", Percentile(s.ms, 50))
            .Set("max_ms", Percentile(s.ms, 100));
      }
      std::printf(
          "# remote-submit = local-submit + one forwarded frame and one\n"
          "# outcome frame per half over loopback TCP; write-remote-wakeup\n"
          "# spans write forward, apply, delta push-back and re-eval.\n");
      cl.a->Stop();
      cl.b->Stop();
    }
  }

  // Open-loop workload harness: a fixed Poisson arrival schedule at a
  // target offered QPS, latency measured from the SCHEDULED arrival to
  // group resolution (queueing delay included — the closed-loop sections
  // above cannot see it). The catalog stresses what flight-booking
  // doesn't: k-way postcondition rings (k ∈ {2,3,4}), write-heavy churn
  // against the reactive pipeline, and Zipf-skewed hot groups.
  {
    size_t arrivals = flags.full ? 1000 : 200;
    // --full also pushes the offered points 4x: on a many-core runner the
    // default points sit far below capacity, and the interesting part of
    // a latency-under-load curve is where it bends.
    double scale = flags.full ? 4.0 : 1.0;
    const WorkloadPoint matrix[] = {
        // k-way rings: latency-under-load at three offered-QPS points per k.
        {"kway", 2, 400, 0, 0},  {"kway", 2, 800, 0, 0},
        {"kway", 2, 1600, 0, 0}, {"kway", 3, 400, 0, 0},
        {"kway", 3, 800, 0, 0},  {"kway", 3, 1600, 0, 0},
        {"kway", 4, 400, 0, 0},  {"kway", 4, 800, 0, 0},
        {"kway", 4, 1600, 0, 0},
        // Write churn: pairs under background INSERT storms (every write
        // wakes the shards holding pending readers of F).
        {"churn", 2, 800, 250, 0},
        {"churn", 2, 800, 1000, 0},
        // Hot-group skew: pairs whose shared relation is Zipf-chosen from
        // 64 hot groups; theta = 0 is the uniform baseline.
        {"skew", 2, 800, 0, 0.0},
        {"skew", 2, 800, 0, 1.2},
    };
    PrintHeader(
        "workload: open-loop latency under load (arrival -> group answered)",
        "workload  k  offered  achieved  groups  failed  mean_ms   p50_ms"
        "   p95_ms   p99_ms");
    for (WorkloadPoint p : matrix) {
      p.offered_qps *= scale;
      if (p.write_qps > 0) p.write_qps *= scale;
      OpenLoopResult r = RunWorkloadPoint(p, arrivals, flags.seed);
      std::printf("%-8s %2d %8.0f %9.0f %7zu %7zu %8.3f %8.3f %8.3f %8.3f\n",
                  p.workload, p.k, r.offered_qps, r.achieved_qps,
                  r.answered_groups, r.failed_groups, r.mean_ms, r.p50_ms,
                  r.p95_ms, r.p99_ms);
      auto& row = json.NewRow("workload");
      row.Set("workload", std::string(p.workload))
          .Set("k", static_cast<double>(p.k))
          .Set("offered_qps", r.offered_qps)
          .Set("write_qps", p.write_qps)
          .Set("zipf_theta", p.zipf_theta)
          .Set("arrivals", static_cast<double>(r.arrivals))
          .Set("queries", static_cast<double>(r.queries))
          .Set("achieved_qps", r.achieved_qps)
          .Set("answered", static_cast<double>(r.answered_groups))
          .Set("failed", static_cast<double>(r.failed_groups))
          .Set("duration_ms", r.duration_ms)
          .Set("mean_ms", r.mean_ms)
          .Set("p50_ms", r.p50_ms)
          .Set("p95_ms", r.p95_ms)
          .Set("p99_ms", r.p99_ms)
          .Set("max_ms", r.max_ms)
          .Set("seed", static_cast<double>(flags.seed));
    }
    std::printf(
        "# open-loop: latency is measured from the scheduled arrival, so\n"
        "# offered > capacity shows up as achieved flattening while the\n"
        "# percentiles balloon (backlog growth) — the saturation signature\n"
        "# closed-loop benches cannot produce.\n");
  }

  // Storage churn: delete/update/insert throughput straight against
  // db::Storage, crossing the GC watermark (reader reporting head vs
  // pinned at start) with the tombstone mode (deferred compaction at 30%
  // dead vs eager compaction on every delete).
  {
    size_t churn_rows = flags.full ? 2048 : 512;
    size_t churn_ops = flags.full ? 8000 : 2000;
    PrintHeader(
        "storage_churn: MVCC write cost vs GC + tombstone mode",
        "gc   tombstones  rows   ops  total_ms  us_per_op  retained"
        "  retired  dead_frac");
    for (bool gc_on : {true, false}) {
      for (bool deferred : {true, false}) {
        ChurnResult r = RunStorageChurn(gc_on, deferred, churn_rows,
                                        churn_ops, flags.seed, flags.runs);
        double us_per_op = r.stats.mean_ms * 1000.0 /
                           static_cast<double>(churn_ops);
        std::printf("%-4s %-10s %5zu %5zu %9.2f %10.3f %9llu %8llu %9.3f\n",
                    gc_on ? "on" : "off", deferred ? "deferred" : "eager",
                    churn_rows, churn_ops, r.stats.mean_ms, us_per_op,
                    static_cast<unsigned long long>(r.retained),
                    static_cast<unsigned long long>(r.retired),
                    r.dead_fraction);
        auto& row = json.NewRow("storage_churn");
        row.Set("gc", std::string(gc_on ? "on" : "off"))
            .Set("tombstones", std::string(deferred ? "deferred" : "eager"))
            .Set("rows", static_cast<double>(churn_rows))
            .Set("ops", static_cast<double>(churn_ops))
            .Set("total_ms", r.stats.mean_ms)
            .Set("stddev_ms", r.stats.stddev_ms)
            .Set("us_per_op", us_per_op)
            .Set("retained_versions", static_cast<double>(r.retained))
            .Set("versions_retired", static_cast<double>(r.retired))
            .Set("dead_fraction", r.dead_fraction)
            .Set("seed", static_cast<double>(flags.seed));
      }
    }
    std::printf(
        "# retained_versions is the MVCC claim: gc=on releases every\n"
        "# superseded version as the reader reports (retained stays 1);\n"
        "# gc=off pins the whole history (one version per op, unbounded\n"
        "# memory). deferred tombstones beat eager compaction on delete\n"
        "# churn by skipping the per-delete rebuild; us_per_op is flat in\n"
        "# the op count because every write pays one O(rows) CoW clone.\n");
  }

  std::printf(
      "\n# expected shape (on >= 8 cores): disjoint qps grows near-linearly\n"
      "# with shards (>= 3x at 8 shards); hot-group qps stays flat because\n"
      "# the colocation invariant pins one relation group to one shard;\n"
      "# batched submit beats one-at-a-time by amortizing the submit lock.\n");
  json.WriteFile(flags.json_path);
  return 0;
}
