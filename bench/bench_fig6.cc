// Reproduces Figure 6: "Scalability on best-case and random workload".
//
// The paper submits 5 … 100,000 two-way coordination queries (random and
// fully-specified/best-case variants) plus three-way triangle workloads to
// the incremental engine and reports total evaluation time; all curves are
// linear in the number of queries (§5.3.1–§5.3.2).
//
// Deviations (documented in EXPERIMENTS.md): the paper's random workload
// sends every pair to the same destination (ITH), which makes wildcard
// postconditions ambiguous under the §3.1.1 safety condition as soon as two
// unpaired queries wait; our engine enforces safety at admission, so this
// bench draws a random destination per pair and reports the workload
// composition (answered / failed / rejected-unsafe / pending) so the curves
// stay interpretable.

#include "db/database.h"
#include <cstdio>

#include "bench/bench_common.h"
#include "engine/engine.h"
#include "util/rng.h"
#include "workload/flight_workload.h"
#include "workload/social_graph.h"

namespace eq::bench {
namespace {

using workload::FlightWorkload;
using workload::SocialGraph;

enum class Kind { kTwoWayRandom, kTwoWayBestCase, kThreeWay };

const char* KindName(Kind k) {
  switch (k) {
    case Kind::kTwoWayRandom:
      return "two-way-random";
    case Kind::kTwoWayBestCase:
      return "two-way-best-case";
    case Kind::kThreeWay:
      return "three-way";
  }
  return "?";
}

struct RunResult {
  double ms = 0;
  engine::EngineMetrics metrics;
  size_t pending = 0;
};

/// One timed run: fresh context/engine, submit the shuffled workload
/// incrementally, flush stragglers.
RunResult RunOnce(const SocialGraph& graph, Kind kind, size_t num_queries,
                  uint64_t seed) {
  ir::QueryContext ctx;
  FlightWorkload wl(&graph, &ctx);
  db::Database db(&ctx.interner());
  Status st = wl.PopulateDatabase(&db);
  if (!st.ok()) {
    std::fprintf(stderr, "populate failed: %s\n", st.ToString().c_str());
    return {};
  }

  Rng rng(seed);
  std::vector<ir::EntangledQuery> queries;
  switch (kind) {
    case Kind::kTwoWayRandom:
      queries = wl.TwoWayRandom(num_queries / 2, &rng);
      break;
    case Kind::kTwoWayBestCase:
      queries = wl.TwoWayBestCase(num_queries / 2, &rng);
      break;
    case Kind::kThreeWay:
      queries = wl.ThreeWay(num_queries / 3, &rng);
      break;
  }
  // §5.3.1: "each run is evaluated on a randomly permuted set of mutually
  // coordinating pairs of queries" — shuffle so partners are not adjacent.
  for (size_t i = queries.size(); i > 1; --i) {
    std::swap(queries[i - 1], queries[rng.Below(i)]);
  }

  engine::CoordinationEngine engine(
      &ctx, &db, {.mode = engine::EvalMode::kIncremental});
  RunResult out;
  Stopwatch sw;
  for (auto& q : queries) {
    auto r = engine.Submit(std::move(q));
    (void)r;  // unsafe rejections are part of the measured workload
  }
  size_t pending_before_flush = engine.pending_count();
  engine.Flush().ok();
  out.ms = sw.ElapsedMillis();
  out.metrics = engine.metrics();
  out.pending = pending_before_flush;
  return out;
}

}  // namespace
}  // namespace eq::bench

int main(int argc, char** argv) {
  using namespace eq::bench;
  BenchFlags flags = BenchFlags::Parse(argc, argv);

  eq::workload::SocialGraphOptions gopts;
  gopts.num_users = flags.users;
  gopts.num_airports = flags.airports;
  gopts.seed = flags.seed;
  eq::workload::SocialGraph graph = eq::workload::SocialGraph::Generate(gopts);

  std::printf("# Figure 6: scalability of coordinated query answering\n");
  std::printf("# graph: %u users, %zu edges, %u airports; runs=%d\n",
              graph.num_users(), graph.num_edges(), graph.num_airports(),
              flags.runs);

  PrintHeader("figure6",
              "workload            queries   total_ms  stddev_ms     qps  "
              "answered   failed unsafe_rej  match_ms    db_ms");
  for (Kind kind : {Kind::kTwoWayBestCase, Kind::kTwoWayRandom,
                    Kind::kThreeWay}) {
    for (size_t n : QuerySweep(flags.full)) {
      RunResult last;
      RunStats stats = Repeat(flags.runs, [&] {
        last = RunOnce(graph, kind, n, flags.seed + n);
        return last.ms;
      });
      std::printf(
          "%-19s %8zu %10.2f %10.2f %8.0f %9llu %8llu %10llu %9.2f %8.2f\n",
          KindName(kind), n, stats.mean_ms, stats.stddev_ms,
          stats.mean_ms > 0 ? 1000.0 * n / stats.mean_ms : 0.0,
          static_cast<unsigned long long>(last.metrics.answered),
          static_cast<unsigned long long>(last.metrics.failed),
          static_cast<unsigned long long>(last.metrics.rejected_unsafe),
          last.metrics.match_seconds * 1e3, last.metrics.db_seconds * 1e3);
    }
  }
  std::printf(
      "\n# expected shape: every curve linear in #queries; best-case pairs\n"
      "# coordinate more often (higher answered column) while the wildcard\n"
      "# random workload spends less per query once ambiguous newcomers are\n"
      "# rejected by the safety check.\n");
  return 0;
}
