#ifndef EQ_BENCH_WORKLOAD_H_
#define EQ_BENCH_WORKLOAD_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "client/query.h"
#include "service/interface.h"

namespace eq::bench {

/// Open-loop multi-client workload driver.
///
/// Closed-loop benches (everything else in bench/) submit as fast as the
/// service answers, so queueing delay is invisible and "latency" is really
/// service time. This driver fixes the arrival process instead: a Poisson
/// schedule at a target offered QPS is generated up front, N client
/// threads submit each arrival at its scheduled instant whether or not the
/// service has kept up, and per-group latency is measured from the
/// SCHEDULED ARRIVAL (not the send) to the last member's resolution — so
/// when the service saturates, the growing backlog shows up as latency,
/// exactly as it would for real clients. Reporting latency-under-load
/// percentiles at several offered-QPS points is what makes saturation and
/// scheduling work (ROADMAP items 1–3) measurable.
///
/// The driver binds to service::CoordinationInterface, so the same harness
/// drives a single-node CoordinationService or a multi-node
/// cluster::ClusterService.

/// Builds the queries of arrival event `i` — one entangled group submitted
/// back-to-back (a k-way group, a hot-skew pair, ...). Called for every
/// arrival BEFORE the timed region, so generation cost stays out of the
/// measurement.
using ArrivalFactory =
    std::function<std::vector<client::Query>(size_t arrival)>;

struct OpenLoopOptions {
  /// Target offered load in queries/sec. The arrival-event rate is derived
  /// from it (offered_qps / mean group size), so a k=4 catalog at the same
  /// offered_qps produces k times fewer, four-times-larger arrivals.
  double offered_qps = 1000;
  /// Arrival events (groups) in the run.
  size_t arrivals = 200;
  /// Client threads the schedule is interleaved across.
  size_t client_threads = 4;
  /// Seed for the Poisson schedule (and nothing else: the factory owns any
  /// randomness in query generation).
  uint64_t seed = 42;
  /// How long to wait for stragglers after the last arrival before
  /// declaring the remaining groups failed.
  std::chrono::milliseconds drain_timeout{10000};
};

struct OpenLoopResult {
  double offered_qps = 0;   ///< echo of the target (queries/sec)
  double achieved_qps = 0;  ///< answered queries / wall duration
  double duration_ms = 0;   ///< first scheduled arrival -> last resolution
  size_t arrivals = 0;      ///< arrival events submitted
  size_t queries = 0;       ///< total member queries submitted
  size_t answered_groups = 0;
  size_t failed_groups = 0;  ///< rejected, failed, or still pending at drain
  /// Group latency from scheduled arrival to last-member resolution.
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

/// Runs one open-loop measurement: pre-generates the schedule and all
/// queries, fans the arrivals out over client threads, and collects
/// latency-under-load percentiles. Blocks until every group resolved or
/// `drain_timeout` elapsed past the last arrival.
OpenLoopResult RunOpenLoop(service::CoordinationInterface* svc,
                           const OpenLoopOptions& opts,
                           const ArrivalFactory& make_arrival);

/// Background write churn against the reactive pipeline: `threads` writers
/// stream unique-row SQL INSERTs into `table` at a combined target rate
/// until Stop(). Every insert touches the relation the pending groups
/// read, so each one exercises snapshot publication + WriteNotify wake-up
/// re-evaluation — the write-heavy interference the churn workload
/// measures.
class ChurnWriters {
 public:
  ChurnWriters(service::CoordinationInterface* svc, std::string table,
               double writes_per_sec, size_t threads, uint64_t seed);
  ~ChurnWriters() { Stop(); }

  /// Stops the writers (idempotent) and returns writes applied.
  size_t Stop();

  size_t writes_applied() const {
    return writes_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<size_t> writes_{0};
  std::vector<std::thread> threads_;
};

}  // namespace eq::bench

#endif  // EQ_BENCH_WORKLOAD_H_
