// Reproduces Figure 7: "Scalability in the number of postconditions".
//
// The paper generates 10,000 queries in groups of w+1 clique members, each
// query carrying w postconditions (w = 1 … 5), and splits the reported time
// into (a) the matching algorithm and (b) MySQL's evaluation of the combined
// query. The expected shape: matching time stays within reasonable bounds
// as w grows, while the database "performs very poorly when the number of
// joins surpasses a certain threshold (14)".
//
// Our in-memory executor with hash indexes does not collapse at 14 joins,
// so this bench reports BOTH the indexed evaluation (our production path)
// and a deliberately degraded configuration — no indexes, no join
// reordering, bounded scan budget — that reproduces the blow-up shape of
// the paper's MySQL 4.1 substrate (see DESIGN.md §4 substitutions).

#include "db/database.h"
#include <cstdio>

#include "bench/bench_common.h"
#include "core/combiner.h"
#include "core/matcher.h"
#include "core/partitioner.h"
#include "core/unifiability_graph.h"
#include "util/rng.h"
#include "workload/flight_workload.h"
#include "workload/social_graph.h"

namespace eq::bench {
namespace {

using core::CombinedQuery;
using core::Combiner;
using core::Matcher;
using core::Partitioner;
using core::UnifiabilityGraph;
using workload::FlightWorkload;
using workload::SocialGraph;

struct Fig7Row {
  size_t w = 0;
  size_t queries = 0;
  size_t joins_per_cq = 0;        // body atoms of one combined query
  double match_ms = 0;            // graph + partition + match + combine
  double db_indexed_ms = 0;       // all combined queries, production path
  double db_naive_per_cq_ms = 0;  // degraded path, average per combined query
  size_t naive_timeouts = 0;      // scan budget exceeded (the "blow-up")
  size_t naive_sampled = 0;
  size_t coordinated_groups = 0;
};

Fig7Row RunOnce(const SocialGraph& graph, size_t w, size_t num_queries,
                uint64_t seed) {
  Fig7Row row;
  row.w = w;

  ir::QueryContext ctx;
  FlightWorkload wl(&graph, &ctx);
  db::Database db(&ctx.interner());
  if (!wl.PopulateDatabase(&db).ok()) return row;

  Rng rng(seed);
  ir::QuerySet qs;
  qs.queries = wl.CliqueCoordination(num_queries / (w + 1), w, &rng);
  qs.AssignIds();
  row.queries = qs.queries.size();

  // ---- matching phase (paper: "time taken by the algorithm to find
  // matching sets of queries") ----
  Stopwatch match_sw;
  UnifiabilityGraph g(&qs);
  g.Build().ok();
  auto components = Partitioner::Components(g);
  Matcher matcher(&g);
  Combiner combiner(&qs);
  std::vector<CombinedQuery> combined;
  for (const auto& component : components) {
    auto survivors = matcher.MatchComponent(component);
    if (survivors.empty()) continue;
    auto cq = combiner.Combine(g, survivors);
    if (cq.ok()) combined.push_back(std::move(cq).value());
  }
  row.match_ms = match_sw.ElapsedMillis();
  row.coordinated_groups = combined.size();
  if (!combined.empty()) {
    row.joins_per_cq = combined[0].body.atoms.size();
  }

  // ---- database phase, production path (indexed, reordered) ----
  db::Snapshot snap = db.snapshot();  // one freeze for the whole phase
  Stopwatch db_sw;
  for (const auto& cq : combined) {
    auto answers = combiner.Evaluate(cq, snap, 1);
    (void)answers;
  }
  row.db_indexed_ms = db_sw.ElapsedMillis();

  // ---- database phase, degraded MySQL-shaped path on a sample ----
  db::ExecOptions naive;
  naive.use_indexes = false;
  naive.reorder_atoms = false;
  naive.max_scanned_rows = 2'000'000;  // abort hopeless plans (the blow-up)
  size_t sample = std::min<size_t>(combined.size(), 10);
  Stopwatch naive_sw;
  for (size_t i = 0; i < sample; ++i) {
    auto answers = combiner.Evaluate(combined[i], snap, 1, naive);
    if (!answers.ok() && answers.status().code() == StatusCode::kTimeout) {
      ++row.naive_timeouts;
    }
  }
  row.naive_sampled = sample;
  row.db_naive_per_cq_ms =
      sample == 0 ? 0 : naive_sw.ElapsedMillis() / static_cast<double>(sample);
  return row;
}

}  // namespace
}  // namespace eq::bench

int main(int argc, char** argv) {
  using namespace eq::bench;
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  size_t num_queries = flags.full ? 10000 : 5000;

  // A denser graph than the default so that 6-cliques (w = 5) exist.
  eq::workload::SocialGraphOptions gopts;
  gopts.num_users = flags.users / 4;
  gopts.num_airports = flags.airports;
  gopts.attach_edges = 10;
  gopts.triangle_prob = 0.85;
  gopts.plant_cliques = 2500;
  gopts.planted_clique_size = 6;
  gopts.seed = flags.seed;
  eq::workload::SocialGraph graph = eq::workload::SocialGraph::Generate(gopts);

  std::printf("# Figure 7: scalability in the number of postconditions\n");
  std::printf("# graph: %u users, %zu edges; %zu queries per point; runs=%d\n",
              graph.num_users(), graph.num_edges(), num_queries, flags.runs);

  PrintHeader("figure7",
              "w  queries  groups  joins/cq  match_ms  db_indexed_ms  "
              "naive_ms/cq  naive_timeouts");
  for (size_t w = 1; w <= 5; ++w) {
    Fig7Row last;
    RunStats stats = Repeat(flags.runs, [&] {
      last = RunOnce(graph, w, num_queries, flags.seed + w);
      return last.match_ms;
    });
    std::printf("%zu %8zu %7zu %9zu %9.2f %14.2f %12.2f %11zu/%zu\n", w,
                last.queries, last.coordinated_groups, last.joins_per_cq,
                stats.mean_ms, last.db_indexed_ms, last.db_naive_per_cq_ms,
                last.naive_timeouts, last.naive_sampled);
  }
  std::printf(
      "\n# expected shape: match_ms grows modestly with w; the degraded\n"
      "# (MySQL-shaped) evaluator blows past its scan budget as joins/cq\n"
      "# exceeds ~14, while the indexed path stays flat.\n");
  return 0;
}
