#ifndef EQ_BENCH_BENCH_COMMON_H_
#define EQ_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "util/stopwatch.h"

namespace eq::bench {

/// Command-line knobs shared by the figure benches.
///
///   --full        paper-scale sweeps (up to 100k queries; slower)
///   --runs=N      repetitions per point (default 3, as in §5.2)
///   --users=N     social-graph size (default 82168 = Slashdot scale)
///   --seed=N      RNG seed
struct BenchFlags {
  bool full = false;
  int runs = 3;
  uint32_t users = 82168;
  uint32_t airports = 102;
  uint64_t seed = 42;

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--full") == 0) {
        f.full = true;
      } else if (std::strncmp(a, "--runs=", 7) == 0) {
        f.runs = std::atoi(a + 7);
      } else if (std::strncmp(a, "--users=", 8) == 0) {
        f.users = static_cast<uint32_t>(std::atoll(a + 8));
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        f.seed = static_cast<uint64_t>(std::atoll(a + 7));
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", a);
      }
    }
    if (f.runs < 1) f.runs = 1;
    return f;
  }
};

/// Mean and standard deviation over repeated timed runs. The paper reports
/// 3-run averages with < 2% standard deviation (§5.2).
struct RunStats {
  double mean_ms = 0;
  double stddev_ms = 0;
};

/// Times `fn` `runs` times (fn must be self-contained per run).
inline RunStats Repeat(int runs, const std::function<double()>& fn) {
  std::vector<double> samples;
  samples.reserve(runs);
  for (int i = 0; i < runs; ++i) samples.push_back(fn());
  RunStats out;
  for (double s : samples) out.mean_ms += s;
  out.mean_ms /= samples.size();
  for (double s : samples) {
    out.stddev_ms += (s - out.mean_ms) * (s - out.mean_ms);
  }
  out.stddev_ms = std::sqrt(out.stddev_ms / samples.size());
  return out;
}

/// Query-count sweep used by the scalability figures: 5 → 100k in the
/// paper; the default run stops at 20k to keep `make bench` snappy.
inline std::vector<size_t> QuerySweep(bool full) {
  std::vector<size_t> sweep = {5, 100, 1000, 5000, 10000, 20000};
  if (full) {
    sweep.push_back(50000);
    sweep.push_back(100000);
  }
  return sweep;
}

inline void PrintHeader(const char* title, const char* columns) {
  std::printf("\n%s\n", title);
  std::printf("%s\n", columns);
}

}  // namespace eq::bench

#endif  // EQ_BENCH_BENCH_COMMON_H_
