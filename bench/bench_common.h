#ifndef EQ_BENCH_BENCH_COMMON_H_
#define EQ_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/stopwatch.h"

namespace eq::bench {

/// Command-line knobs shared by the figure benches.
///
///   --full        paper-scale sweeps (up to 100k queries; slower)
///   --runs=N      repetitions per point (default 3, as in §5.2)
///   --users=N     social-graph size (default 82168 = Slashdot scale)
///   --seed=N      RNG seed, threaded into every randomized section
///                 (social graphs, Zipf skew, Poisson arrival schedules)
///                 so a CI bench run is reproducible bit-for-bit; sections
///                 that sample randomness echo it into their JSON rows
///   --json=PATH   also write machine-readable results (see JsonReporter)
struct BenchFlags {
  bool full = false;
  int runs = 3;
  uint32_t users = 82168;
  uint32_t airports = 102;
  uint64_t seed = 42;
  std::string json_path;

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--full") == 0) {
        f.full = true;
      } else if (std::strncmp(a, "--runs=", 7) == 0) {
        f.runs = std::atoi(a + 7);
      } else if (std::strncmp(a, "--users=", 8) == 0) {
        f.users = static_cast<uint32_t>(std::atoll(a + 8));
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        f.seed = static_cast<uint64_t>(std::atoll(a + 7));
      } else if (std::strncmp(a, "--json=", 7) == 0) {
        f.json_path = a + 7;
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", a);
      }
    }
    if (f.runs < 1) f.runs = 1;
    return f;
  }
};

/// Collects benchmark results as flat rows and writes them as a JSON array
/// (`BENCH_*.json` trajectory tracking). Values are numbers or strings:
///
///     JsonReporter json;
///     auto& row = json.NewRow("service_scaling");
///     row.Set("shards", 8).Set("qps", 123456.0);
///     json.WriteFile("BENCH_service.json");
class JsonReporter {
 public:
  class Row {
   public:
    explicit Row(std::string bench) {
      Set("bench", std::move(bench));
    }
    Row& Set(const std::string& key, double value) {
      char buf[64];
      // Trim trailing zeros so integers render as integers.
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      fields_.emplace_back(key, std::string(buf));
      return *this;
    }
    Row& Set(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, "\"" + Escaped(value) + "\"");
      return *this;
    }

   private:
    friend class JsonReporter;
    static std::string Escaped(const std::string& s) {
      std::string out;
      for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
              char buf[8];
              std::snprintf(buf, sizeof(buf), "\\u%04x", c);
              out += buf;
            } else {
              out += c;
            }
        }
      }
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Row& NewRow(std::string bench) {
    rows_.emplace_back(std::move(bench));
    return rows_.back();
  }

  /// Writes `[{...}, ...]`; returns false (with a note on stderr) on I/O
  /// failure. A no-op when `path` is empty.
  bool WriteFile(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "json: cannot open %s\n", path.c_str());
      return false;
    }
    std::fputs("[\n", f);
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::fputs("  {", f);
      const auto& fields = rows_[r].fields_;
      for (size_t i = 0; i < fields.size(); ++i) {
        std::fprintf(f, "\"%s\": %s%s", fields[i].first.c_str(),
                     fields[i].second.c_str(),
                     i + 1 < fields.size() ? ", " : "");
      }
      std::fprintf(f, "}%s\n", r + 1 < rows_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
    std::printf("# json results written to %s\n", path.c_str());
    return true;
  }

 private:
  std::deque<Row> rows_;  // deque: NewRow references stay valid as it grows
};

/// Mean and standard deviation over repeated timed runs. The paper reports
/// 3-run averages with < 2% standard deviation (§5.2).
struct RunStats {
  double mean_ms = 0;
  double stddev_ms = 0;
};

/// Times `fn` `runs` times (fn must be self-contained per run).
inline RunStats Repeat(int runs, const std::function<double()>& fn) {
  std::vector<double> samples;
  samples.reserve(runs);
  for (int i = 0; i < runs; ++i) samples.push_back(fn());
  RunStats out;
  for (double s : samples) out.mean_ms += s;
  out.mean_ms /= samples.size();
  for (double s : samples) {
    out.stddev_ms += (s - out.mean_ms) * (s - out.mean_ms);
  }
  out.stddev_ms = std::sqrt(out.stddev_ms / samples.size());
  return out;
}

/// Nearest-rank percentile over a sample (pct in [0, 100]; 100 = max).
/// Takes the sample by value: percentile extraction sorts a copy, leaving
/// the caller's insertion-ordered data intact.
inline double Percentile(std::vector<double> xs, double pct) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  size_t idx = static_cast<size_t>(pct / 100.0 * (xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

/// Query-count sweep used by the scalability figures: 5 → 100k in the
/// paper; the default run stops at 20k to keep `make bench` snappy.
inline std::vector<size_t> QuerySweep(bool full) {
  std::vector<size_t> sweep = {5, 100, 1000, 5000, 10000, 20000};
  if (full) {
    sweep.push_back(50000);
    sweep.push_back(100000);
  }
  return sweep;
}

inline void PrintHeader(const char* title, const char* columns) {
  std::printf("\n%s\n", title);
  std::printf("%s\n", columns);
}

}  // namespace eq::bench

#endif  // EQ_BENCH_BENCH_COMMON_H_
