// Ablation studies for the design choices called out in DESIGN.md (✦):
//
//  A. Atom index vs all-pairs unifiability-graph construction (§4.1.4's
//     "straightforward but inefficient" baseline).
//  B. Disjoint-set-forest MGU vs the textbook set-of-sets unifier
//     (§4.1.5's O(k·α(k)) bound vs quadratic merging).
//  C. Combined-query execution: greedy bound-first ordering + hash indexes
//     vs degraded configurations.
//  D. Parallel per-partition evaluation (§4.1.2) vs sequential flush.

#include "db/database.h"
#include <cstdio>

#include "bench/bench_common.h"
#include "core/combiner.h"
#include "core/matcher.h"
#include "core/partitioner.h"
#include "core/unifiability_graph.h"
#include "engine/engine.h"
#include "unify/naive_unifier.h"
#include "unify/unifier.h"
#include "util/rng.h"
#include "workload/flight_workload.h"
#include "workload/social_graph.h"

namespace eq::bench {
namespace {

using workload::FlightWorkload;
using workload::SocialGraph;

// ------------------------------------------------------------ ablation A --

void AblateAtomIndex(const SocialGraph& graph, const BenchFlags& flags) {
  PrintHeader("ablation-A: unifiability-graph construction",
              "variant       queries   build_ms  unification_attempts");
  size_t n = flags.full ? 8000 : 3000;
  for (bool use_index : {true, false}) {
    double ms = 0;
    uint64_t attempts = 0;
    RunStats stats = Repeat(flags.runs, [&] {
      ir::QueryContext ctx;
      FlightWorkload wl(&graph, &ctx);
      Rng rng(flags.seed);
      ir::QuerySet qs;
      qs.queries = wl.TwoWayBestCase(n / 2, &rng);
      qs.AssignIds();
      core::UnifiabilityGraph g(
          &qs, core::GraphOptions{.use_atom_index = use_index});
      Stopwatch sw;
      g.Build().ok();
      ms = sw.ElapsedMillis();
      attempts = g.unification_attempts();
      return ms;
    });
    std::printf("%-13s %8zu %10.2f %21llu\n",
                use_index ? "atom-index" : "all-pairs", n, stats.mean_ms,
                static_cast<unsigned long long>(attempts));
  }
}

// ------------------------------------------------------------ ablation B --

void AblateMgu(const BenchFlags& flags) {
  PrintHeader("ablation-B: MGU implementation",
              "variant             vars   chain_merges   total_ms");
  size_t k = flags.full ? 3000 : 1000;
  // Chain workload: merge u_{i} (linking var i and i+1) into an accumulator —
  // the access pattern of unifier propagation along a long chain.
  for (int variant = 0; variant < 2; ++variant) {
    RunStats stats = Repeat(flags.runs, [&] {
      Stopwatch sw;
      if (variant == 0) {
        unify::Unifier acc;
        for (uint32_t i = 0; i + 1 < k; ++i) {
          unify::Unifier step;
          step.UnionVars(i, i + 1);
          acc.MergeFrom(step);
        }
      } else {
        unify::NaiveUnifier acc;
        for (uint32_t i = 0; i + 1 < k; ++i) {
          unify::NaiveUnifier step;
          step.UnionVars(i, i + 1);
          acc.MergeFrom(step);
        }
      }
      return sw.ElapsedMillis();
    });
    std::printf("%-19s %5zu %14zu %10.2f\n",
                variant == 0 ? "disjoint-set-forest" : "set-of-sets", k, k - 1,
                stats.mean_ms);
  }
}

// ------------------------------------------------------------ ablation C --

void AblateExecutor(const SocialGraph& graph, const BenchFlags& flags) {
  PrintHeader("ablation-C: combined-query execution",
              "variant                 combined_queries   eval_ms  timeouts");
  // Build w=3 clique combined queries once, evaluate under three configs.
  ir::QueryContext ctx;
  FlightWorkload wl(&graph, &ctx);
  db::Database db(&ctx.interner());
  wl.PopulateDatabase(&db).ok();
  Rng rng(flags.seed);
  ir::QuerySet qs;
  qs.queries = wl.CliqueCoordination(flags.full ? 400 : 150, 3, &rng);
  qs.AssignIds();
  core::UnifiabilityGraph g(&qs);
  g.Build().ok();
  core::Matcher matcher(&g);
  core::Combiner combiner(&qs);
  std::vector<core::CombinedQuery> combined;
  for (const auto& component : core::Partitioner::Components(g)) {
    auto survivors = matcher.MatchComponent(component);
    if (survivors.empty()) continue;
    auto cq = combiner.Combine(g, survivors);
    if (cq.ok()) combined.push_back(std::move(cq).value());
  }

  struct Config {
    const char* name;
    db::ExecOptions opts;
  };
  db::ExecOptions indexed;
  db::ExecOptions no_index;
  no_index.use_indexes = false;
  no_index.max_scanned_rows = 2'000'000;
  db::ExecOptions no_reorder;
  no_reorder.reorder_atoms = false;
  no_reorder.max_scanned_rows = 2'000'000;
  for (const Config& cfg :
       {Config{"indexed+reordered", indexed},
        Config{"no-indexes", no_index},
        Config{"no-reordering", no_reorder}}) {
    size_t timeouts = 0;
    db::Snapshot snap = db.snapshot();
    RunStats stats = Repeat(flags.runs, [&] {
      timeouts = 0;
      Stopwatch sw;
      for (const auto& cq : combined) {
        auto answers = combiner.Evaluate(cq, snap, 1, cfg.opts);
        if (!answers.ok() &&
            answers.status().code() == StatusCode::kTimeout) {
          ++timeouts;
        }
      }
      return sw.ElapsedMillis();
    });
    std::printf("%-23s %16zu %9.2f %9zu\n", cfg.name, combined.size(),
                stats.mean_ms, timeouts);
  }
}

// ------------------------------------------------------------ ablation D --

void AblateParallelFlush(const SocialGraph& graph, const BenchFlags& flags) {
  PrintHeader("ablation-D: parallel partition evaluation",
              "threads   queries   flush_ms   answered");
  size_t n = flags.full ? 40000 : 10000;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    double flush_ms = 0;
    uint64_t answered = 0;
    RunStats stats = Repeat(flags.runs, [&] {
      ir::QueryContext ctx;
      FlightWorkload wl(&graph, &ctx);
      db::Database db(&ctx.interner());
      wl.PopulateDatabase(&db).ok();
      Rng rng(flags.seed);
      auto queries = wl.TwoWayBestCase(n / 2, &rng);
      engine::CoordinationEngine engine(
          &ctx, &db,
          {.mode = engine::EvalMode::kSetAtATime, .worker_threads = threads});
      for (auto& q : queries) {
        auto r = engine.Submit(std::move(q));
        (void)r;
      }
      Stopwatch sw;
      engine.Flush().ok();
      flush_ms = sw.ElapsedMillis();
      answered = engine.metrics().answered;
      return flush_ms;
    });
    std::printf("%7zu %9zu %10.2f %10llu\n", threads, n, stats.mean_ms,
                static_cast<unsigned long long>(answered));
  }
}

// ------------------------------------------------------------ ablation E --

void AblateIncrementalRematch(const SocialGraph& graph,
                              const BenchFlags& flags) {
  PrintHeader("ablation-E: incremental rematch scope (massive cluster)",
              "variant          queries   total_ms");
  size_t n = flags.full ? 8000 : 3000;
  for (engine::IncrementalRematch rematch :
       {engine::IncrementalRematch::kFullPartition,
        engine::IncrementalRematch::kDeltaSeeds}) {
    RunStats stats = Repeat(flags.runs, [&] {
      ir::QueryContext ctx;
      FlightWorkload wl(&graph, &ctx);
      db::Database db(&ctx.interner());
      wl.PopulateDatabase(&db).ok();
      Rng rng(flags.seed);
      auto queries = wl.MassiveCluster(n, &rng);
      engine::CoordinationEngine engine(
          &ctx, &db,
          {.mode = engine::EvalMode::kIncremental, .rematch = rematch});
      Stopwatch sw;
      for (auto& q : queries) {
        auto r = engine.Submit(std::move(q));
        (void)r;
      }
      engine.Flush().ok();
      return sw.ElapsedMillis();
    });
    std::printf("%-16s %8zu %10.2f\n",
                rematch == engine::IncrementalRematch::kFullPartition
                    ? "full-partition"
                    : "delta-seeds",
                n, stats.mean_ms);
  }
}

}  // namespace
}  // namespace eq::bench

int main(int argc, char** argv) {
  using namespace eq::bench;
  BenchFlags flags = BenchFlags::Parse(argc, argv);

  eq::workload::SocialGraphOptions gopts;
  gopts.num_users = flags.users / 4;  // ablations need structure, not scale
  gopts.num_airports = flags.airports;
  gopts.seed = flags.seed;
  gopts.plant_cliques = 1000;
  gopts.planted_clique_size = 6;
  eq::workload::SocialGraph graph = eq::workload::SocialGraph::Generate(gopts);

  std::printf("# Ablations for DESIGN.md design choices\n");
  std::printf("# graph: %u users, %zu edges; runs=%d\n", graph.num_users(),
              graph.num_edges(), flags.runs);

  AblateAtomIndex(graph, flags);
  AblateMgu(flags);
  AblateExecutor(graph, flags);
  AblateParallelFlush(graph, flags);
  AblateIncrementalRematch(graph, flags);
  return 0;
}
