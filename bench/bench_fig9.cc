// Reproduces Figure 9: "Evaluation time for safety check".
//
// The paper loads the system with 20,000 queries that are unable to
// coordinate, then adds sets of 5 … 100,000 queries that fail the safety
// check with respect to the resident queries, and measures the time of the
// safety check. Expected shape: near-linear in the size of the added set,
// with low per-query overhead ("the safety check does not add significant
// overhead to the system").

#include <cstdio>

#include "bench/bench_common.h"
#include "core/safety.h"
#include "util/rng.h"
#include "workload/flight_workload.h"
#include "workload/social_graph.h"

namespace eq::bench {
namespace {

using core::SafetyChecker;
using workload::FlightWorkload;
using workload::SocialGraph;

struct Fig9Row {
  double ms = 0;
  size_t rejected = 0;
  uint64_t unification_attempts = 0;
};

Fig9Row RunOnce(const SocialGraph& graph, size_t resident, size_t added,
                uint64_t seed) {
  ir::QueryContext ctx;
  FlightWorkload wl(&graph, &ctx);
  Rng rng(seed);

  ir::QuerySet qs;
  qs.queries = wl.NoUnification(resident, &rng);
  auto unsafe = wl.UnsafeSet(added, &rng);
  for (auto& q : unsafe) qs.queries.push_back(std::move(q));
  qs.AssignIds();

  SafetyChecker checker(&qs);
  // Load the resident set (untimed — it is the standing system state).
  for (ir::QueryId q = 0; q < resident; ++q) {
    if (!checker.Admit(q).ok()) {
      std::fprintf(stderr, "resident query %u unexpectedly unsafe\n", q);
    }
  }
  uint64_t attempts_before = checker.unification_attempts();

  // Timed: the safety check over the added set.
  Fig9Row row;
  Stopwatch sw;
  for (ir::QueryId q = static_cast<ir::QueryId>(resident);
       q < qs.queries.size(); ++q) {
    if (!checker.Admit(q).ok()) ++row.rejected;
  }
  row.ms = sw.ElapsedMillis();
  row.unification_attempts = checker.unification_attempts() - attempts_before;
  return row;
}

}  // namespace
}  // namespace eq::bench

int main(int argc, char** argv) {
  using namespace eq::bench;
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t kResident = 20000;  // paper: twenty thousand resident queries

  eq::workload::SocialGraphOptions gopts;
  gopts.num_users = flags.users;
  gopts.num_airports = flags.airports;
  gopts.seed = flags.seed;
  eq::workload::SocialGraph graph = eq::workload::SocialGraph::Generate(gopts);

  std::printf("# Figure 9: safety-check overhead\n");
  std::printf("# %zu resident non-coordinating queries; runs=%d\n", kResident,
              flags.runs);

  PrintHeader("figure9",
              "added_queries   check_ms  stddev_ms  us_per_query  rejected  "
              "unify_attempts");
  std::vector<size_t> sweep = {5, 100, 1000, 10000, 20000};
  if (flags.full) {
    sweep.push_back(50000);
    sweep.push_back(100000);
  }
  for (size_t n : sweep) {
    Fig9Row last;
    RunStats stats = Repeat(flags.runs, [&] {
      last = RunOnce(graph, kResident, n, flags.seed + n);
      return last.ms;
    });
    std::printf("%13zu %10.2f %10.2f %13.2f %9zu %15llu\n", n, stats.mean_ms,
                stats.stddev_ms, stats.mean_ms * 1000.0 / n, last.rejected,
                static_cast<unsigned long long>(last.unification_attempts));
  }
  std::printf(
      "\n# expected shape: near-linear check time (flat us_per_query);\n"
      "# every added query rejected as unsafe.\n");
  return 0;
}
